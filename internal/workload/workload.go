// Package workload generates benchmark join queries.
//
// Two families are supported:
//
//   - Random queries by the method of Steinbrunn et al. [19], which the
//     paper uses for all its experiments (§6.1): random table
//     cardinalities and attribute domain sizes, equality predicates with
//     selectivity 1/max(domain), and configurable join-graph shapes
//     (chain, star, cycle, clique — plus a snowflake extension with a
//     fact→dimension→sub-dimension fan-out). A correlation knob warps
//     the independence selectivity estimates per edge to stress pruners
//     with skewed cost landscapes.
//
//   - Fixed TPC-style schema queries (FromSchema): the canonical
//     foreign-key join over a catalog.Schema (built-in TPC-H/TPC-DS-style
//     or loaded from JSON) at a configurable scale factor.
//
// Generation is fully deterministic given (Params, seed) — same inputs,
// byte-identical query specs — so every experiment is reproducible and
// workers could regenerate queries from a seed instead of receiving them
// over the network. Schema queries take no random draws at all.
//
// See docs/workloads.md for a guide covering every generator and flag.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"mpq/internal/catalog"
	"mpq/internal/query"
)

// Shape is the join-graph structure (Figure 3 compares chain, star and
// cycle; star is the paper's default).
type Shape int

const (
	// Star connects table 0 to every other table (the default in §6.1).
	Star Shape = iota
	// Chain connects table i to table i+1.
	Chain
	// Cycle is a chain plus an edge closing the loop.
	Cycle
	// Clique connects every table pair.
	Clique
	// Snowflake arranges the tables as a complete Params.Branching-ary
	// tree rooted at table 0: the fact table joins the first-level
	// dimensions, each dimension joins its sub-dimensions, and so on
	// (table i>0 attaches to table (i-1)/Branching). Cardinalities are
	// drawn one decade lower per level, so facts are large and leaf
	// dimensions small — the skew of a real star/snowflake schema.
	Snowflake
)

// Shapes lists all join-graph shapes in a stable order.
var Shapes = [...]Shape{Star, Chain, Cycle, Clique, Snowflake}

// ShapeNames returns the names of all join-graph shapes, in Shapes
// order. Command-line tools build their -shape usage strings from this
// so the help text cannot drift from the implementation.
func ShapeNames() []string {
	out := make([]string, len(Shapes))
	for i, s := range Shapes {
		out[i] = s.String()
	}
	return out
}

// String names the shape as in Figure 3.
func (s Shape) String() string {
	switch s {
	case Star:
		return "Star"
	case Chain:
		return "Chain"
	case Cycle:
		return "Cycle"
	case Clique:
		return "Clique"
	case Snowflake:
		return "Snowflake"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// ParseShape converts a shape name (case-sensitive, as produced by
// String) back to a Shape.
func ParseShape(s string) (Shape, error) {
	for _, sh := range Shapes {
		if sh.String() == s {
			return sh, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown join graph shape %q", s)
}

// Params configures query generation. NewParams supplies the documented
// defaults (log-uniform cardinalities in [10, 100000], log-uniform
// attribute domains in [2, 1000], 4 attributes per table, snowflake
// branching 3, independent selectivities).
type Params struct {
	Tables        int
	Shape         Shape
	MinCard       float64
	MaxCard       float64
	MinDomain     int64
	MaxDomain     int64
	AttrsPerTable int
	// Branching is the fan-out of the Snowflake shape: every non-fact
	// table has up to Branching children. Ignored by the other shapes.
	// Branching 1 degenerates to a chain.
	Branching int
	// Correlation warps the independence selectivity estimate per edge
	// to model correlated predicates. For each edge a factor
	// c = Correlation·u with u ~ U[0,1) is drawn deterministically from
	// the seed and the selectivity becomes sel^(1-c):
	//
	//	 0  — independence (the Steinbrunn default; no extra random
	//	      draws, so generation is bit-identical to earlier versions);
	//	>0  — positively correlated predicates retain more rows than
	//	      independence predicts (c→1 approaches selectivity 1);
	//	<0  — anti-correlated predicates retain fewer.
	//
	// Must lie in [-1, 1].
	Correlation float64
}

// NewParams returns the default parameters for an n-table query.
func NewParams(n int, shape Shape) Params {
	return Params{
		Tables:        n,
		Shape:         shape,
		MinCard:       10,
		MaxCard:       100000,
		MinDomain:     2,
		MaxDomain:     1000,
		AttrsPerTable: 4,
		Branching:     3,
	}
}

// Validate reports the first problem with the parameters.
func (p Params) Validate() error {
	if p.Tables < 1 {
		return fmt.Errorf("workload: need at least 1 table, got %d", p.Tables)
	}
	if !(p.MinCard > 0) || p.MaxCard < p.MinCard {
		return fmt.Errorf("workload: invalid cardinality range [%g, %g]", p.MinCard, p.MaxCard)
	}
	if p.MinDomain < 1 || p.MaxDomain < p.MinDomain {
		return fmt.Errorf("workload: invalid domain range [%d, %d]", p.MinDomain, p.MaxDomain)
	}
	if p.AttrsPerTable < 1 {
		return fmt.Errorf("workload: need at least 1 attribute per table")
	}
	switch p.Shape {
	case Star, Chain, Cycle, Clique:
	case Snowflake:
		if p.Branching < 1 {
			return fmt.Errorf("workload: snowflake branching must be >= 1, got %d", p.Branching)
		}
	default:
		return fmt.Errorf("workload: invalid shape %d", int(p.Shape))
	}
	if p.Correlation < -1 || p.Correlation > 1 {
		return fmt.Errorf("workload: correlation %g outside [-1, 1]", p.Correlation)
	}
	return nil
}

// depths returns each table's level in the snowflake tree (0 for the
// fact table) and nil for every other shape.
func (p Params) depths() []int {
	if p.Shape != Snowflake {
		return nil
	}
	d := make([]int, p.Tables)
	for i := 1; i < p.Tables; i++ {
		d[i] = d[(i-1)/p.Branching] + 1
	}
	return d
}

// edges returns the join-graph edge list for the shape.
func (p Params) edges() [][2]int {
	n := p.Tables
	var out [][2]int
	switch p.Shape {
	case Chain:
		for i := 0; i+1 < n; i++ {
			out = append(out, [2]int{i, i + 1})
		}
	case Star:
		for i := 1; i < n; i++ {
			out = append(out, [2]int{0, i})
		}
	case Cycle:
		for i := 0; i+1 < n; i++ {
			out = append(out, [2]int{i, i + 1})
		}
		if n > 2 {
			out = append(out, [2]int{n - 1, 0})
		}
	case Clique:
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				out = append(out, [2]int{i, j})
			}
		}
	case Snowflake:
		for i := 1; i < n; i++ {
			out = append(out, [2]int{(i - 1) / p.Branching, i})
		}
	}
	return out
}

// logUniform draws from [lo, hi] with uniform density in log space, the
// Steinbrunn et al. convention for cardinalities and domains.
func logUniform(rng *rand.Rand, lo, hi float64) float64 {
	if lo == hi {
		return lo
	}
	return math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo)))
}

// Generate builds the catalog and query for the given parameters and
// seed. The same (params, seed) always yields the same query.
func Generate(p Params, seed int64) (*catalog.Catalog, *query.Query, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed))

	cat := catalog.New()
	depths := p.depths()
	tables := make([]query.Table, p.Tables)
	for i := range tables {
		lo, hi := p.MinCard, p.MaxCard
		if depths != nil {
			// Snowflake: one decade lower per level, clamped to the
			// configured range, so facts dwarf their leaf dimensions.
			scale := math.Pow(10, float64(depths[i]))
			lo = math.Max(p.MinCard, p.MaxCard/(10*scale))
			hi = math.Max(lo, p.MaxCard/scale)
		}
		card := math.Round(logUniform(rng, lo, hi))
		attrs := make([]catalog.Attribute, p.AttrsPerTable)
		for a := range attrs {
			dom := int64(math.Round(logUniform(rng, float64(p.MinDomain), float64(p.MaxDomain))))
			// A column cannot have more distinct values than rows.
			if float64(dom) > card {
				dom = int64(card)
			}
			attrs[a] = catalog.Attribute{Name: fmt.Sprintf("a%d", a), Domain: dom}
		}
		name := fmt.Sprintf("T%d", i)
		if _, err := cat.AddTable(catalog.Table{Name: name, Cardinality: card, Attributes: attrs}); err != nil {
			return nil, nil, err
		}
		tables[i] = query.Table{Name: name, Cardinality: card}
	}

	q, err := query.New(tables)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range p.edges() {
		ai := rng.Intn(p.AttrsPerTable)
		bi := rng.Intn(p.AttrsPerTable)
		sel, err := cat.EqSelectivity(e[0], ai, e[1], bi)
		if err != nil {
			return nil, nil, err
		}
		if p.Correlation != 0 {
			// Correlated predicates: warp the independence estimate by a
			// per-edge factor drawn from the same seeded stream. The
			// extra draw happens only in correlated mode, so Correlation
			// == 0 stays bit-identical to the historical generator.
			// sel ∈ (0,1] and |c| < 1, so sel^(1-c) stays in (0,1].
			c := p.Correlation * rng.Float64()
			sel = math.Pow(sel, 1-c)
		}
		if err := q.AddPredicate(query.Predicate{
			Left: e[0], Right: e[1], LeftAttr: ai, RightAttr: bi, Selectivity: sel,
		}); err != nil {
			return nil, nil, err
		}
	}
	q.Freeze()
	return cat, q, nil
}

// MustGenerate panics on error; for tests and benchmarks with known-valid
// parameters.
func MustGenerate(p Params, seed int64) *query.Query {
	_, q, err := Generate(p, seed)
	if err != nil {
		panic(err)
	}
	return q
}

// FromSchema builds the catalog and the canonical foreign-key join
// query of a TPC-style schema at the given scale factor. The query joins
// every table of the schema along its declared joins, with selectivities
// from the catalog's 1/max(domain) estimate. No random draws are taken:
// the same (schema, sf) always yields byte-identical specs.
func FromSchema(s *catalog.Schema, sf float64) (*catalog.Catalog, *query.Query, error) {
	cat, err := s.Build(sf)
	if err != nil {
		return nil, nil, err
	}
	tables := make([]query.Table, cat.Len())
	for i := range tables {
		t := cat.Table(i)
		tables[i] = query.Table{Name: t.Name, Cardinality: t.Cardinality}
	}
	q, err := query.New(tables)
	if err != nil {
		return nil, nil, err
	}
	for i, j := range s.Joins {
		li, lai, err := resolveAttr(cat, j.Left, j.LeftAttr)
		if err != nil {
			return nil, nil, fmt.Errorf("workload: schema %q join %d: %w", s.Name, i, err)
		}
		ri, rai, err := resolveAttr(cat, j.Right, j.RightAttr)
		if err != nil {
			return nil, nil, fmt.Errorf("workload: schema %q join %d: %w", s.Name, i, err)
		}
		sel, err := cat.EqSelectivity(li, lai, ri, rai)
		if err != nil {
			return nil, nil, err
		}
		if err := q.AddPredicate(query.Predicate{
			Left: li, Right: ri, LeftAttr: lai, RightAttr: rai, Selectivity: sel,
		}); err != nil {
			return nil, nil, fmt.Errorf("workload: schema %q join %d: %w", s.Name, i, err)
		}
	}
	q.Freeze()
	return cat, q, nil
}

// resolveAttr maps (table name, attribute name) to catalog indices.
func resolveAttr(cat *catalog.Catalog, table, attr string) (ti, ai int, err error) {
	ti, ok := cat.Lookup(table)
	if !ok {
		return 0, 0, fmt.Errorf("unknown table %q", table)
	}
	for i, a := range cat.Table(ti).Attributes {
		if a.Name == attr {
			return ti, i, nil
		}
	}
	return 0, 0, fmt.Errorf("table %q has no attribute %q", table, attr)
}

// Batch generates count queries with consecutive seeds starting at base.
func Batch(p Params, base int64, count int) ([]*query.Query, error) {
	out := make([]*query.Query, count)
	for i := range out {
		_, q, err := Generate(p, base+int64(i))
		if err != nil {
			return nil, err
		}
		out[i] = q
	}
	return out, nil
}
