package workload

import (
	"testing"

	"mpq/internal/bitset"
)

func TestShapeString(t *testing.T) {
	want := map[Shape]string{Star: "Star", Chain: "Chain", Cycle: "Cycle", Clique: "Clique", Snowflake: "Snowflake"}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
		parsed, err := ParseShape(name)
		if err != nil || parsed != s {
			t.Errorf("ParseShape(%q) = %v, %v", name, parsed, err)
		}
	}
	if Shape(9).String() != "Shape(9)" {
		t.Fatal("unknown shape string")
	}
	if _, err := ParseShape("Tree"); err == nil {
		t.Fatal("unknown shape parsed")
	}
}

func TestShapeNamesMatchShapes(t *testing.T) {
	names := ShapeNames()
	if len(names) != len(Shapes) {
		t.Fatalf("ShapeNames has %d entries, Shapes %d", len(names), len(Shapes))
	}
	for i, name := range names {
		sh, err := ParseShape(name)
		if err != nil || sh != Shapes[i] {
			t.Errorf("ShapeNames[%d] = %q does not round-trip: %v, %v", i, name, sh, err)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	if err := NewParams(8, Star).Validate(); err != nil {
		t.Fatalf("default params rejected: %v", err)
	}
	bad := []Params{
		{Tables: 0, Shape: Star, MinCard: 1, MaxCard: 2, MinDomain: 1, MaxDomain: 2, AttrsPerTable: 1},
		{Tables: 3, Shape: Star, MinCard: 0, MaxCard: 2, MinDomain: 1, MaxDomain: 2, AttrsPerTable: 1},
		{Tables: 3, Shape: Star, MinCard: 5, MaxCard: 2, MinDomain: 1, MaxDomain: 2, AttrsPerTable: 1},
		{Tables: 3, Shape: Star, MinCard: 1, MaxCard: 2, MinDomain: 0, MaxDomain: 2, AttrsPerTable: 1},
		{Tables: 3, Shape: Star, MinCard: 1, MaxCard: 2, MinDomain: 3, MaxDomain: 2, AttrsPerTable: 1},
		{Tables: 3, Shape: Star, MinCard: 1, MaxCard: 2, MinDomain: 1, MaxDomain: 2, AttrsPerTable: 0},
		{Tables: 3, Shape: Shape(7), MinCard: 1, MaxCard: 2, MinDomain: 1, MaxDomain: 2, AttrsPerTable: 1},
		{Tables: 3, Shape: Snowflake, MinCard: 1, MaxCard: 2, MinDomain: 1, MaxDomain: 2, AttrsPerTable: 1},
		{Tables: 3, Shape: Star, MinCard: 1, MaxCard: 2, MinDomain: 1, MaxDomain: 2, AttrsPerTable: 1, Correlation: 1.5},
		{Tables: 3, Shape: Star, MinCard: 1, MaxCard: 2, MinDomain: 1, MaxDomain: 2, AttrsPerTable: 1, Correlation: -1.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestEdgeCounts(t *testing.T) {
	n := 7
	cases := map[Shape]int{
		Chain:     n - 1,
		Star:      n - 1,
		Cycle:     n,
		Clique:    n * (n - 1) / 2,
		Snowflake: n - 1,
	}
	for shape, want := range cases {
		p := NewParams(n, shape)
		if got := len(p.edges()); got != want {
			t.Errorf("%v edges = %d want %d", shape, got, want)
		}
	}
}

func TestSnowflakeTopology(t *testing.T) {
	// Branching 3, 13 tables: fact 0, dimensions 1-3, sub-dimensions
	// 4-12 attached three per dimension.
	p := NewParams(13, Snowflake)
	want := map[[2]int]bool{}
	for i := 1; i < 13; i++ {
		want[[2]int{(i - 1) / 3, i}] = true
	}
	edges := p.edges()
	if len(edges) != len(want) {
		t.Fatalf("%d edges, want %d", len(edges), len(want))
	}
	for _, e := range edges {
		if !want[e] {
			t.Errorf("unexpected edge %v", e)
		}
	}
	// Branching 1 degenerates to a chain.
	p.Branching = 1
	for i, e := range p.edges() {
		if e != [2]int{i, i + 1} {
			t.Fatalf("branching-1 edge %d = %v, want chain", i, e)
		}
	}
}

func TestSnowflakeCardinalitySkew(t *testing.T) {
	// Cardinalities shrink by about a decade per level: with the default
	// range [10, 100000] and branching 3, the fact table must land in
	// the top decade and every level-2 sub-dimension at least two
	// decades below the maximum.
	p := NewParams(13, Snowflake)
	for seed := int64(0); seed < 10; seed++ {
		_, q, err := Generate(p, seed)
		if err != nil {
			t.Fatal(err)
		}
		if fact := q.Tables[0].Cardinality; fact < p.MaxCard/10 {
			t.Fatalf("seed %d: fact cardinality %g below top decade", seed, fact)
		}
		for i := 4; i < 13; i++ {
			if c := q.Tables[i].Cardinality; c > p.MaxCard/100 {
				t.Fatalf("seed %d: sub-dimension %d cardinality %g above MaxCard/100", seed, i, c)
			}
		}
	}
}

func TestCorrelationWarpsSelectivities(t *testing.T) {
	// Runs with Correlation = +c and -c consume identical random draws
	// (same tables, same attribute picks, same per-edge factor u), so
	// each predicate pair satisfies sel+ = s^(1-cu) >= s >= s^(1+cu) =
	// sel-, with s = sqrt(sel+·sel-) the independence estimate.
	base := NewParams(8, Star)
	pos := base
	pos.Correlation = 0.9
	_, corr, err := Generate(pos, 5)
	if err != nil {
		t.Fatal(err)
	}
	neg := base
	neg.Correlation = -0.9
	_, anti, err := Generate(neg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(corr.Preds) != len(anti.Preds) {
		t.Fatal("correlation sign changed the predicate count")
	}
	changed := 0
	for i := range corr.Preds {
		sp, sn := corr.Preds[i].Selectivity, anti.Preds[i].Selectivity
		if sp < sn {
			t.Fatalf("pred %d: positive correlation more selective than negative (%g < %g)", i, sp, sn)
		}
		if sp <= 0 || sp > 1 || sn <= 0 || sn > 1 {
			t.Fatalf("pred %d: warped selectivity out of range (%g, %g)", i, sp, sn)
		}
		if sp > sn {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("correlation had no effect on any predicate")
	}
	for i := range corr.Tables {
		if corr.Tables[i].Cardinality != anti.Tables[i].Cardinality {
			t.Fatal("correlation changed table cardinalities")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := NewParams(8, Star)
	_, q1, err := Generate(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	_, q2, err := Generate(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	if q1.N() != q2.N() || len(q1.Preds) != len(q2.Preds) {
		t.Fatal("same seed produced different shapes")
	}
	for i := range q1.Tables {
		if q1.Tables[i].Cardinality != q2.Tables[i].Cardinality {
			t.Fatal("same seed produced different cardinalities")
		}
	}
	for i := range q1.Preds {
		if q1.Preds[i] != q2.Preds[i] {
			t.Fatal("same seed produced different predicates")
		}
	}
	_, q3, err := Generate(p, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range q1.Tables {
		if q1.Tables[i].Cardinality != q3.Tables[i].Cardinality {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical cardinalities (suspicious)")
	}
}

func TestGeneratedQueriesValid(t *testing.T) {
	for _, shape := range Shapes {
		for n := 2; n <= 10; n += 2 {
			for seed := int64(0); seed < 5; seed++ {
				cat, q, err := Generate(NewParams(n, shape), seed)
				if err != nil {
					t.Fatalf("%v n=%d seed=%d: %v", shape, n, seed, err)
				}
				if err := q.Validate(); err != nil {
					t.Fatalf("%v n=%d seed=%d: invalid query: %v", shape, n, seed, err)
				}
				if cat.Len() != n {
					t.Fatalf("catalog has %d tables want %d", cat.Len(), n)
				}
				p := NewParams(n, shape)
				for i := 0; i < n; i++ {
					c := q.Tables[i].Cardinality
					if c < p.MinCard || c > p.MaxCard {
						t.Fatalf("cardinality %g outside [%g,%g]", c, p.MinCard, p.MaxCard)
					}
				}
				for _, pr := range q.Preds {
					if pr.Selectivity <= 0 || pr.Selectivity > 1 {
						t.Fatalf("selectivity %g out of range", pr.Selectivity)
					}
					// Selectivity must be 1/max(dom) for some valid domain.
					if pr.Selectivity < 1/float64(p.MaxDomain) {
						t.Fatalf("selectivity %g below 1/MaxDomain", pr.Selectivity)
					}
				}
				// All shapes except Clique produce connected graphs with
				// exactly the declared edges; all shapes are connected.
				if n >= 2 && !q.Connected(bitset.Range(n)) {
					t.Fatalf("%v query disconnected", shape)
				}
			}
		}
	}
}

func TestDomainCappedByCardinality(t *testing.T) {
	p := NewParams(6, Star)
	p.MinCard, p.MaxCard = 10, 20
	p.MinDomain, p.MaxDomain = 500, 1000
	cat, _, err := Generate(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cat.Len(); i++ {
		tbl := cat.Table(i)
		for _, a := range tbl.Attributes {
			if float64(a.Domain) > tbl.Cardinality {
				t.Fatalf("table %s: domain %d exceeds cardinality %g", tbl.Name, a.Domain, tbl.Cardinality)
			}
		}
	}
}

func TestGenerateRejectsInvalidParams(t *testing.T) {
	if _, _, err := Generate(Params{}, 0); err == nil {
		t.Fatal("zero params accepted")
	}
}

func TestBatch(t *testing.T) {
	qs, err := Batch(NewParams(5, Chain), 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 7 {
		t.Fatalf("Batch returned %d queries", len(qs))
	}
	// Batch seeds are consecutive: element i equals Generate(seed 100+i).
	_, want, _ := Generate(NewParams(5, Chain), 102)
	if qs[2].Tables[0].Cardinality != want.Tables[0].Cardinality {
		t.Fatal("Batch seed offset wrong")
	}
}

func TestMustGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGenerate did not panic")
		}
	}()
	MustGenerate(Params{}, 0)
}

func TestLogUniformBounds(t *testing.T) {
	p := NewParams(20, Clique)
	for seed := int64(0); seed < 20; seed++ {
		_, q, err := Generate(p, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, tbl := range q.Tables {
			if tbl.Cardinality < p.MinCard || tbl.Cardinality > p.MaxCard {
				t.Fatalf("cardinality %g out of bounds", tbl.Cardinality)
			}
		}
	}
}
