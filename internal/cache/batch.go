package cache

import (
	"context"
	"fmt"

	"mpq/internal/core"
	"mpq/internal/query"
)

// BatchJob is one (query, spec) unit of a cached batch.
type BatchJob struct {
	Query *query.Query
	Spec  core.JobSpec
}

// BatchComputeFunc optimizes the batch's distinct cache misses —
// typically the wrapped engine's OptimizeBatch method, so the inner
// engine keeps its batch pipelining (e.g. the TCP master's keep-alive
// connection reuse) across the deduplicated jobs.
type BatchComputeFunc func(ctx context.Context, jobs []BatchJob) ([]*core.Answer, error)

// OptimizeBatch serves a batch through the cache with in-batch
// duplicate collapsing: stored answers are hits, repeated jobs within
// the batch collapse onto one computation, and only the distinct misses
// reach computeBatch — in one call, preserving the inner engine's batch
// semantics. Answers come back in input order; every cached or
// collapsed answer is a shallow copy of the computed one, so wire plan
// fingerprints are bit-identical across duplicates.
//
// The batch path does not join in-flight singleflight computations from
// concurrent Optimize calls (a concurrent identical request may compute
// twice); both paths insert through the same store, so answers are
// unaffected.
func (c *Cache) OptimizeBatch(ctx context.Context, jobs []BatchJob, computeBatch BatchComputeFunc) ([]*core.Answer, error) {
	answers := make([]*core.Answer, len(jobs))
	keys := make([]Key, len(jobs))
	firstOf := make(map[string]int, len(jobs)) // key → position of first miss
	dups := make(map[int][]int)                // first-miss position → duplicate positions
	var miss []BatchJob
	var missPos []int

	c.mu.Lock()
	for i, job := range jobs {
		keys[i] = c.KeyOf(job.Query, job.Spec)
		if e := c.lookupLocked(keys[i]); e != nil {
			c.t.Hits++
			c.touchLocked(e)
			answers[i] = stamped(e.ans, c.snapshotLocked(), true, false)
			continue
		}
		if first, ok := firstOf[keys[i].Bytes]; ok {
			dups[first] = append(dups[first], i)
			continue
		}
		firstOf[keys[i].Bytes] = i
		miss = append(miss, job)
		missPos = append(missPos, i)
	}
	c.mu.Unlock()

	if len(miss) == 0 {
		return answers, nil
	}
	computed, err := computeBatch(ctx, miss)
	if err != nil {
		return nil, err
	}
	if len(computed) != len(miss) {
		return nil, fmt.Errorf("cache: batch compute returned %d answers for %d jobs", len(computed), len(miss))
	}

	c.mu.Lock()
	for k, ans := range computed {
		i := missPos[k]
		c.t.Misses++
		c.insertLocked(keys[i], ans)
		answers[i] = stamped(ans, c.snapshotLocked(), false, false)
		for _, j := range dups[i] {
			c.t.Collapses++
			answers[j] = stamped(ans, c.snapshotLocked(), false, true)
		}
	}
	c.mu.Unlock()
	return answers, nil
}
