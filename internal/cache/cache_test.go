package cache

import (
	"context"
	"testing"

	"mpq/internal/core"
	"mpq/internal/partition"
	"mpq/internal/plan"
	"mpq/internal/query"
	"mpq/internal/wire"
	"mpq/internal/workload"
)

func genQuery(t *testing.T, n int, seed int64) *query.Query {
	t.Helper()
	_, q, err := workload.Generate(workload.NewParams(n, workload.Star), seed)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func mustAnswer(t *testing.T, q *query.Query, spec core.JobSpec) *core.Answer {
	t.Helper()
	ans, err := core.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	return ans
}

// TestKeyOfSensitivity: everything that can change the chosen plan must
// change the key — statistics, join graph, space, workers, objective,
// pruner flags and every cost-model knob.
func TestKeyOfSensitivity(t *testing.T) {
	c := New(Config{})
	q := genQuery(t, 7, 1)
	base := core.JobSpec{Space: partition.Linear, Workers: 4}
	baseKey := c.KeyOf(q, base)

	variants := []struct {
		name string
		spec core.JobSpec
	}{}
	add := func(name string, mut func(*core.JobSpec)) {
		s := base
		mut(&s)
		variants = append(variants, struct {
			name string
			spec core.JobSpec
		}{name, s})
	}
	add("space", func(s *core.JobSpec) { s.Space = partition.Bushy })
	add("workers", func(s *core.JobSpec) { s.Workers = 8 })
	add("objective", func(s *core.JobSpec) { s.Objective = core.MultiObjective; s.Alpha = 1 })
	add("alpha", func(s *core.JobSpec) { s.Objective = core.MultiObjective; s.Alpha = 10 })
	add("orders", func(s *core.JobSpec) { s.InterestingOrders = true })
	add("crossproducts", func(s *core.JobSpec) { s.DisableCrossProducts = true })
	add("costmodel", func(s *core.JobSpec) { s.CostModel.HashFactor = 99 })
	add("robust", func(s *core.JobSpec) { s.Objective = core.RobustObjective })
	add("robustband", func(s *core.JobSpec) { s.Objective = core.RobustObjective; s.RobustBand = 3 })
	for _, v := range variants {
		if c.KeyOf(q, v.spec).Bytes == baseKey.Bytes {
			t.Errorf("%s: spec change did not change the key", v.name)
		}
	}

	// A statistics change — same shape, different selectivities — must
	// change the key too.
	if c.KeyOf(genQuery(t, 7, 2), base).Bytes == baseKey.Bytes {
		t.Error("different query statistics did not change the key")
	}
	// And the same (query, spec) must reproduce the identical key.
	if c.KeyOf(q, base) != baseKey {
		t.Error("KeyOf is not deterministic")
	}
}

// TestLookupInsert: a round trip serves a shallow copy that is
// bit-identical under the wire plan fingerprint and stamped as a hit.
func TestLookupInsert(t *testing.T) {
	c := New(Config{})
	q := genQuery(t, 7, 3)
	spec := core.JobSpec{Space: partition.Linear, Workers: 4}

	if _, ok := c.Lookup(q, spec); ok {
		t.Fatal("lookup on empty cache hit")
	}
	ans := mustAnswer(t, q, spec)
	c.Insert(q, spec, ans)
	got, ok := c.Lookup(q, spec)
	if !ok {
		t.Fatal("lookup after insert missed")
	}
	if wire.PlanFingerprint(got.Best) != wire.PlanFingerprint(ans.Best) {
		t.Fatal("cached best plan is not bit-identical")
	}
	if got.Cache == nil || !got.Cache.Hit || got.Cache.Collapsed {
		t.Fatalf("hit stamp = %+v", got.Cache)
	}
	if got == ans {
		t.Fatal("lookup returned the stored answer, not a copy")
	}
	tt := c.Totals()
	if tt.Hits != 1 || tt.Entries != 1 || tt.Bytes <= 0 {
		t.Fatalf("totals = %+v", tt)
	}
	// Re-inserting the same key replaces the entry without growing.
	c.Insert(q, spec, ans)
	if tt2 := c.Totals(); tt2.Entries != 1 || tt2.Bytes != tt.Bytes {
		t.Fatalf("replacement changed occupancy: %+v -> %+v", tt, tt2)
	}
}

// withCost returns a copy of ans whose deterministic recompute cost
// (Stats.WorkUnits) is pinned to w, for eviction-order tests.
func withCost(ans *core.Answer, w uint64) *core.Answer {
	cp := *ans
	cp.Stats = plan.Stats{SetsProcessed: w}
	return &cp
}

// TestCostWeightedEviction: under a byte budget, the cheap-to-recompute
// entries go first even when the expensive entry is the oldest, and the
// eviction order among equals is deterministic (insertion order).
func TestCostWeightedEviction(t *testing.T) {
	q := genQuery(t, 7, 4)
	ans := mustAnswer(t, q, core.JobSpec{Space: partition.Linear, Workers: 1})
	// Distinct keys with identical sizes: same query and plan, varying
	// worker count (a fixed-width field of the encoded spec).
	spec := func(w int) core.JobSpec { return core.JobSpec{Space: partition.Linear, Workers: w} }

	probe := New(Config{})
	probe.Insert(q, spec(1), ans)
	size := probe.Totals().Bytes

	c := New(Config{MaxBytes: 3 * size})
	c.Insert(q, spec(1), withCost(ans, 1000)) // expensive, oldest
	c.Insert(q, spec(2), withCost(ans, 1))    // cheap
	c.Insert(q, spec(3), withCost(ans, 1))    // cheap
	c.Insert(q, spec(4), withCost(ans, 1))    // forces one eviction

	if _, ok := c.Lookup(q, spec(1)); !ok {
		t.Fatal("expensive entry was evicted before cheap ones")
	}
	if _, ok := c.Lookup(q, spec(2)); ok {
		t.Fatal("oldest cheap entry survived; eviction order is not deterministic")
	}
	if _, ok := c.Lookup(q, spec(3)); !ok {
		t.Fatal("newer cheap entry was evicted out of order")
	}
	tt := c.Totals()
	if tt.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", tt.Evictions)
	}
	if tt.Bytes > 3*size {
		t.Fatalf("occupancy %d exceeds budget %d", tt.Bytes, 3*size)
	}

	// GreedyDual aging: every eviction raises the inflation level to the
	// victim's priority, so after enough cheap churn (cost ratio 1000:2
	// and a two-entry residency buffer, hence ~1000 evictions) the
	// untouched expensive entry's stale priority falls below the fresh
	// cheap ones and it ages out too.
	for w := 5; w < 1505; w++ {
		c.Insert(q, spec(w), withCost(ans, 1))
	}
	if _, ok := c.Lookup(q, spec(1)); ok {
		t.Fatal("untouched expensive entry never aged out")
	}
}

// TestOversizeNotCached: an answer bigger than the whole budget is
// refused rather than evicting everything.
func TestOversizeNotCached(t *testing.T) {
	q := genQuery(t, 7, 5)
	spec := core.JobSpec{Space: partition.Linear, Workers: 1}
	ans := mustAnswer(t, q, spec)
	c := New(Config{MaxBytes: 16})
	c.Insert(q, spec, ans)
	if tt := c.Totals(); tt.Entries != 0 || tt.Evictions != 0 {
		t.Fatalf("oversize insert changed the cache: %+v", tt)
	}
}

// TestFingerprintCollision: with every key hashed to the same 64-bit
// fingerprint, different jobs must still be served their own plans via
// the full-key collision chain.
func TestFingerprintCollision(t *testing.T) {
	c := New(Config{})
	c.hashFn = func([]byte) uint64 { return 42 }
	qa, qb := genQuery(t, 7, 6), genQuery(t, 7, 7)
	spec := core.JobSpec{Space: partition.Linear, Workers: 2}
	ansA, ansB := mustAnswer(t, qa, spec), mustAnswer(t, qb, spec)

	c.Insert(qa, spec, ansA)
	c.Insert(qb, spec, ansB)
	gotA, okA := c.Lookup(qa, spec)
	gotB, okB := c.Lookup(qb, spec)
	if !okA || !okB {
		t.Fatal("collision chain lost an entry")
	}
	if wire.PlanFingerprint(gotA.Best) != wire.PlanFingerprint(ansA.Best) ||
		wire.PlanFingerprint(gotB.Best) != wire.PlanFingerprint(ansB.Best) {
		t.Fatal("colliding fingerprints served the wrong plan")
	}
	if tt := c.Totals(); tt.Collisions != 1 || tt.Entries != 2 {
		t.Fatalf("totals = %+v, want 1 collision and 2 entries", tt)
	}
}

// TestOptimizeMissThenHit: the singleflight front door computes once,
// stamps the miss, and serves every repeat as a hit without calling
// compute again.
func TestOptimizeMissThenHit(t *testing.T) {
	c := New(Config{})
	q := genQuery(t, 7, 8)
	spec := core.JobSpec{Space: partition.Linear, Workers: 4}
	calls := 0
	compute := func(ctx context.Context, q *query.Query, s core.JobSpec) (*core.Answer, error) {
		calls++
		return core.OptimizeContext(ctx, q, s, 0)
	}
	ctx := context.Background()
	first, err := c.Optimize(ctx, q, spec, compute)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cache == nil || first.Cache.Hit || first.Cache.Collapsed {
		t.Fatalf("miss stamp = %+v", first.Cache)
	}
	second, err := c.Optimize(ctx, q, spec, compute)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cache.Hit {
		t.Fatalf("repeat was not a hit: %+v", second.Cache)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	if wire.PlanFingerprint(first.Best) != wire.PlanFingerprint(second.Best) {
		t.Fatal("hit is not bit-identical to the miss")
	}
}
