package cache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mpq/internal/core"
	"mpq/internal/partition"
	"mpq/internal/query"
	"mpq/internal/wire"
)

// TestSingleflightOneComputeManyCallers is the collapsing guarantee
// under -race: N concurrent identical requests run exactly one dynamic
// program, every caller gets a bit-identical plan, and the counters add
// up to one miss plus N-1 shared servings.
func TestSingleflightOneComputeManyCallers(t *testing.T) {
	c := New(Config{})
	q := genQuery(t, 8, 21)
	spec := core.JobSpec{Space: partition.Linear, Workers: 4}

	var computes atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	compute := func(ctx context.Context, q *query.Query, s core.JobSpec) (*core.Answer, error) {
		computes.Add(1)
		close(started) // only the singleflight leader gets here
		<-release
		return core.OptimizeContext(ctx, q, s, 0)
	}

	const n = 32
	answers := make([]*core.Answer, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			answers[i], errs[i] = c.Optimize(context.Background(), q, spec, compute)
		}(i)
	}
	<-started
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times for %d concurrent identical requests", got, n)
	}
	want := wire.PlanFingerprint(answers[0].Best)
	for i := range answers {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if wire.PlanFingerprint(answers[i].Best) != want {
			t.Fatalf("caller %d got a different plan", i)
		}
		if answers[i].Cache == nil {
			t.Fatalf("caller %d has no cache stamp", i)
		}
	}
	tt := c.Totals()
	if tt.Misses != 1 || tt.Hits+tt.Collapses != n-1 {
		t.Fatalf("totals = %+v, want 1 miss and %d shared servings", tt, n-1)
	}
}

// waitWaiters polls until the key's flight has at least n parked
// followers (the leader has already taken the token and left the
// waiter count).
func waitWaiters(t *testing.T, c *Cache, key Key, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		f := c.flights[key.Bytes]
		w := 0
		if f != nil {
			w = f.waiters
		}
		c.mu.Unlock()
		if w >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("flight never reached %d waiters (have %d)", n, w)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSingleflightCanceledLeaderHandsOff: a leader whose own context
// dies mid-compute must not poison the flight — leadership passes to a
// waiting follower, which computes under its live context and
// succeeds; only the canceled caller sees the context error.
func TestSingleflightCanceledLeaderHandsOff(t *testing.T) {
	c := New(Config{})
	q := genQuery(t, 8, 22)
	spec := core.JobSpec{Space: partition.Linear, Workers: 4}
	key := c.KeyOf(q, spec)

	var calls atomic.Int32
	leaderIn := make(chan struct{})
	compute := func(ctx context.Context, q *query.Query, s core.JobSpec) (*core.Answer, error) {
		if calls.Add(1) == 1 {
			close(leaderIn)
			<-ctx.Done() // a context-aware DP aborting mid-search
			return nil, ctx.Err()
		}
		return core.OptimizeContext(ctx, q, s, 0)
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	leaderErr := make(chan error, 1)
	go func() {
		_, err := c.Optimize(leaderCtx, q, spec, compute)
		leaderErr <- err
	}()
	<-leaderIn

	var followerAns *core.Answer
	var followerErr error
	followerDone := make(chan struct{})
	go func() {
		defer close(followerDone)
		followerAns, followerErr = c.Optimize(context.Background(), q, spec, compute)
	}()
	waitWaiters(t, c, key, 1)
	cancelLeader()

	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled leader returned %v, want context.Canceled", err)
	}
	<-followerDone
	if followerErr != nil {
		t.Fatalf("follower inherited the leader's cancellation: %v", followerErr)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("compute ran %d times, want 2 (canceled leader + promoted follower)", got)
	}
	if followerAns.Cache == nil || followerAns.Cache.Hit || followerAns.Cache.Collapsed {
		t.Fatalf("promoted follower should be stamped as the miss, got %+v", followerAns.Cache)
	}
	// The promoted follower's answer is cached for everyone after.
	if _, ok := c.Lookup(q, spec); !ok {
		t.Fatal("handed-off flight did not populate the cache")
	}
}

// TestSingleflightDeterministicFailure: a compute error under a live
// context is the job's answer — published to every waiting follower,
// never cached, and recomputed on the next request.
func TestSingleflightDeterministicFailure(t *testing.T) {
	c := New(Config{})
	q := genQuery(t, 8, 23)
	spec := core.JobSpec{Space: partition.Linear, Workers: 4}
	key := c.KeyOf(q, spec)

	boom := errors.New("deterministic job failure")
	started := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int32
	compute := func(ctx context.Context, q *query.Query, s core.JobSpec) (*core.Answer, error) {
		if calls.Add(1) == 1 {
			close(started)
			<-release
		}
		return nil, boom
	}

	leaderErr := make(chan error, 1)
	go func() {
		_, err := c.Optimize(context.Background(), q, spec, compute)
		leaderErr <- err
	}()
	<-started
	followerErr := make(chan error, 1)
	go func() {
		_, err := c.Optimize(context.Background(), q, spec, compute)
		followerErr <- err
	}()
	waitWaiters(t, c, key, 1)
	close(release)

	if err := <-leaderErr; !errors.Is(err, boom) {
		t.Fatalf("leader error = %v", err)
	}
	if err := <-followerErr; !errors.Is(err, boom) {
		t.Fatalf("follower error = %v", err)
	}
	if tt := c.Totals(); tt.Entries != 0 {
		t.Fatalf("failed job was cached: %+v", tt)
	}
	// The failure is not sticky: the next request computes again.
	if _, err := c.Optimize(context.Background(), q, spec, compute); !errors.Is(err, boom) {
		t.Fatal("retry did not recompute")
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("compute ran %d times, want 2", got)
	}
}

// TestSingleflightFollowerCancellation: a follower whose own context
// expires leaves the flight untouched and returns its context error;
// the leader still completes and caches the answer.
func TestSingleflightFollowerCancellation(t *testing.T) {
	c := New(Config{})
	q := genQuery(t, 8, 24)
	spec := core.JobSpec{Space: partition.Linear, Workers: 4}
	key := c.KeyOf(q, spec)

	started := make(chan struct{})
	release := make(chan struct{})
	compute := func(ctx context.Context, q *query.Query, s core.JobSpec) (*core.Answer, error) {
		close(started)
		<-release
		return core.OptimizeContext(ctx, q, s, 0)
	}

	leaderDone := make(chan error, 1)
	go func() {
		_, err := c.Optimize(context.Background(), q, spec, compute)
		leaderDone <- err
	}()
	<-started

	followerCtx, cancelFollower := context.WithCancel(context.Background())
	followerErr := make(chan error, 1)
	go func() {
		_, err := c.Optimize(followerCtx, q, spec, compute)
		followerErr <- err
	}()
	waitWaiters(t, c, key, 1)
	cancelFollower()
	if err := <-followerErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled follower returned %v", err)
	}

	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader failed after follower cancellation: %v", err)
	}
	if _, ok := c.Lookup(q, spec); !ok {
		t.Fatal("leader's answer was not cached")
	}
}
