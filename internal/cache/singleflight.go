package cache

import (
	"context"

	"mpq/internal/core"
	"mpq/internal/query"
)

// ComputeFunc runs the actual optimization on a cache miss — typically
// the wrapped engine's Optimize method.
type ComputeFunc func(ctx context.Context, q *query.Query, spec core.JobSpec) (*core.Answer, error)

// flight is one in-progress computation of a key. Leadership is a
// token in a one-slot channel: whoever holds it runs the dynamic
// program; everyone else waits for done (or for the token, if the
// leader cancels and hands off).
type flight struct {
	token chan struct{} // cap 1; take it to become the leader
	done  chan struct{} // closed when ans/err are published
	// waiters is the number of callers currently parked on this flight
	// (leader included until it takes the token), guarded by Cache.mu.
	// A canceled leader uses it to decide between handing the token to
	// a follower and retiring the flight.
	waiters int
	ans     *core.Answer
	err     error
}

// Optimize serves (q, spec) through the cache: a stored answer is a
// hit; otherwise concurrent identical requests collapse onto one
// flight whose leader runs compute and publishes the answer to every
// follower, and the answer is inserted under the cost-weighted budget.
//
// Context semantics: compute runs under the leader's ctx. If the
// leader's own context is canceled mid-compute, the flight is not
// poisoned — leadership passes to a waiting follower (whose context is
// still live) and only the canceled caller gets the context error. A
// follower whose own context expires leaves the flight alone and
// returns its context error. compute errors with a live context are
// deterministic job failures: they are published to all followers and
// never cached.
//
// Answers are shallow copies sharing the immutable plan trees of the
// cached answer, stamped with a per-answer core.CacheStats.
func (c *Cache) Optimize(ctx context.Context, q *query.Query, spec core.JobSpec, compute ComputeFunc) (*core.Answer, error) {
	key := c.KeyOf(q, spec)

	c.mu.Lock()
	if e := c.lookupLocked(key); e != nil {
		c.t.Hits++
		c.touchLocked(e)
		ans, snap := e.ans, c.snapshotLocked()
		c.mu.Unlock()
		return stamped(ans, snap, true, false), nil
	}
	f := c.flights[key.Bytes]
	if f == nil {
		f = &flight{token: make(chan struct{}, 1), done: make(chan struct{})}
		f.token <- struct{}{}
		c.flights[key.Bytes] = f
	}
	f.waiters++
	c.mu.Unlock()

	select {
	case <-f.token:
		return c.lead(ctx, key, f, q, spec, compute)

	case <-f.done:
		c.mu.Lock()
		f.waiters--
		if f.err == nil {
			c.t.Collapses++
		}
		snap := c.snapshotLocked()
		c.mu.Unlock()
		if f.err != nil {
			return nil, f.err
		}
		return stamped(f.ans, snap, false, true), nil

	case <-ctx.Done():
		c.mu.Lock()
		f.waiters--
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// lead runs the computation as the flight's leader and publishes the
// outcome. On the leader's own cancellation it hands the token to a
// waiting follower (or retires the flight if nobody waits).
func (c *Cache) lead(ctx context.Context, key Key, f *flight, q *query.Query, spec core.JobSpec, compute ComputeFunc) (*core.Answer, error) {
	c.mu.Lock()
	f.waiters--
	c.mu.Unlock()

	ans, err := compute(ctx, q, spec)
	if err != nil && ctx.Err() != nil {
		// Our own context died — this says nothing about the job, so
		// don't fail the followers. Hand leadership to one of them; if
		// none is waiting, retire the flight so the next arrival leads.
		c.mu.Lock()
		if f.waiters == 0 {
			delete(c.flights, key.Bytes)
		} else {
			f.token <- struct{}{}
		}
		c.mu.Unlock()
		return nil, err
	}

	f.ans, f.err = ans, err
	c.mu.Lock()
	delete(c.flights, key.Bytes)
	c.t.Misses++
	if err == nil {
		c.insertLocked(key, ans)
	}
	snap := c.snapshotLocked()
	c.mu.Unlock()
	close(f.done)
	if err != nil {
		return nil, err
	}
	return stamped(ans, snap, false, false), nil
}
