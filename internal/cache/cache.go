// Package cache implements the fingerprint-keyed plan cache that any
// execution engine can wear (mpq.WithCache): at served-traffic volumes
// most optimization requests are exact repeats, and not running the
// dynamic program at all beats any amount of DP tuning.
//
// Three mechanisms compose:
//
//   - A canonical, collision-checked fingerprint. The cache key is the
//     wire encoding of the full job — join-graph shape, table
//     cardinalities, selectivities, plan space, worker count, objective,
//     pruner configuration and cost model — so anything that could
//     change the chosen plan changes the key, and nothing else does.
//     Keys hash to a 64-bit fingerprint for the index; every lookup
//     verifies the full encoded key, so a fingerprint collision can
//     never serve the wrong plan.
//
//   - Singleflight collapsing (see singleflight.go). N concurrent
//     identical requests run one dynamic program; the other N-1 wait
//     and share the answer. A canceled leader hands leadership to a
//     waiting follower instead of poisoning the flight.
//
//   - Cost-weighted LRU eviction under a byte budget (GreedyDual-Size):
//     each entry's eviction priority is the running inflation level
//     plus recompute-cost/size, where recompute cost is the DP's
//     deterministic work-unit counter. Expensive-to-recompute plans
//     survive longer than cheap ones of equal recency, and everything
//     ages out eventually. Budget, priorities and sizes are all
//     deterministic, so eviction order is reproducible.
//
// Cached answers are bit-identical (wire plan fingerprint) to uncached
// ones by construction: the cache stores the engine's answer and serves
// shallow copies that share the immutable plan trees. Hit/miss/evict/
// collapse counters are surfaced per answer through core.Answer.Cache
// and in aggregate through Totals.
package cache

import (
	"container/heap"
	"hash/fnv"
	"sync"

	"mpq/internal/core"
	"mpq/internal/query"
	"mpq/internal/wire"
)

// Config parameterizes a Cache.
type Config struct {
	// MaxBytes is the eviction budget: the sum of entry sizes (encoded
	// key + encoded plans + bookkeeping) is kept at or below it.
	// 0 means unlimited.
	MaxBytes int64
}

// Key is the canonical cache key of one optimization request: the wire
// encoding of the job (query plus complete JobSpec) and its 64-bit
// fingerprint. Build it with Cache.KeyOf.
type Key struct {
	// FP is the FNV-1a fingerprint of Bytes — the index the cache hashes
	// on.
	FP uint64
	// Bytes is the canonical encoding itself — the collision check.
	// Lookups compare it in full, so equal fingerprints with different
	// jobs can never alias.
	Bytes string
}

// Totals is a snapshot of the cache-wide counters.
type Totals struct {
	// Hits counts lookups served from a stored entry.
	Hits uint64
	// Misses counts dynamic programs actually run on behalf of the
	// cache (singleflight leaders and batch-path computes).
	Misses uint64
	// Collapses counts requests that shared another request's work: a
	// singleflight follower, or a duplicate job inside one batch.
	Collapses uint64
	// Evictions counts entries removed to respect MaxBytes.
	Evictions uint64
	// Collisions counts stored key pairs whose 64-bit fingerprints
	// coincide while their full keys differ (served correctly via the
	// collision chain; counted for observability).
	Collisions uint64
	// Entries and Bytes are the current occupancy.
	Entries int
	Bytes   int64
}

// entry is one cached answer with its GreedyDual-Size accounting.
type entry struct {
	key   Key
	ans   *core.Answer
	bytes int64
	cost  float64 // deterministic recompute cost (DP work units)
	h     float64 // GreedyDual priority: inflation at last touch + cost/bytes
	seq   uint64  // insertion order, the deterministic tiebreak
	hidx  int     // index in the eviction heap
}

// Cache is a fingerprint-keyed plan cache with singleflight collapsing
// and cost-weighted LRU eviction. The zero value is not usable; call
// New. All methods are safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	entries  map[uint64][]*entry // fingerprint → collision chain
	flights  map[string]*flight  // full key → in-flight computation
	evict    entryHeap
	lval     float64 // GreedyDual inflation level (max evicted priority)
	bytes    int64
	maxBytes int64
	seq      uint64
	t        Totals

	// hashFn overrides the key fingerprint function in tests (forcing
	// collisions); nil means FNV-1a.
	hashFn func([]byte) uint64
}

// New returns an empty cache.
func New(cfg Config) *Cache {
	return &Cache{
		entries:  make(map[uint64][]*entry),
		flights:  make(map[string]*flight),
		maxBytes: cfg.MaxBytes,
	}
}

// KeyOf builds the canonical cache key for (q, spec): the wire job
// encoding — the exact bytes a master would send a worker for this job,
// with sequence and partition fixed to zero — fingerprinted with
// FNV-1a. Everything that changes the chosen plan (statistics, join
// graph, plan space, worker count, objective, α, order flags, cost
// model) is in the encoding; nothing else is.
func (c *Cache) KeyOf(q *query.Query, spec core.JobSpec) Key {
	b := wire.EncodeJobRequest(&wire.JobRequest{Spec: spec, Query: q})
	var fp uint64
	if c.hashFn != nil {
		fp = c.hashFn(b)
	} else {
		h := fnv.New64a()
		h.Write(b)
		fp = h.Sum64()
	}
	return Key{FP: fp, Bytes: string(b)}
}

// Totals returns a snapshot of the cache-wide counters.
func (c *Cache) Totals() Totals {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapshotLocked()
}

func (c *Cache) snapshotLocked() Totals {
	t := c.t
	t.Entries = len(c.evict)
	t.Bytes = c.bytes
	return t
}

// Lookup returns the cached answer for (q, spec) as a shallow copy
// stamped as a hit, or (nil, false). The copy shares the stored plan
// trees — they are immutable — so its wire fingerprints equal the
// original answer's.
func (c *Cache) Lookup(q *query.Query, spec core.JobSpec) (*core.Answer, bool) {
	key := c.KeyOf(q, spec)
	c.mu.Lock()
	e := c.lookupLocked(key)
	if e == nil {
		c.mu.Unlock()
		return nil, false
	}
	c.t.Hits++
	c.touchLocked(e)
	ans, snap := e.ans, c.snapshotLocked()
	c.mu.Unlock()
	return stamped(ans, snap, true, false), true
}

// Insert stores an answer for (q, spec), evicting as needed. The cache
// keeps the answer as given; callers must not mutate it afterwards.
func (c *Cache) Insert(q *query.Query, spec core.JobSpec, ans *core.Answer) {
	key := c.KeyOf(q, spec)
	c.mu.Lock()
	c.insertLocked(key, ans)
	c.mu.Unlock()
}

// lookupLocked finds the entry with exactly this key, walking the
// fingerprint's collision chain.
func (c *Cache) lookupLocked(key Key) *entry {
	for _, e := range c.entries[key.FP] {
		if e.key.Bytes == key.Bytes {
			return e
		}
	}
	return nil
}

// touchLocked refreshes an entry's GreedyDual priority on a hit: back
// to the current inflation level plus its cost-per-byte bonus.
func (c *Cache) touchLocked(e *entry) {
	e.h = c.lval + e.cost/float64(e.bytes)
	heap.Fix(&c.evict, e.hidx)
}

// insertLocked stores (key → ans), replacing an exact-key entry if one
// exists and evicting the lowest-priority entries until the budget
// holds. An answer larger than the whole budget is not cached.
func (c *Cache) insertLocked(key Key, ans *core.Answer) {
	size := entrySize(key, ans)
	if c.maxBytes > 0 && size > c.maxBytes {
		return
	}
	if old := c.lookupLocked(key); old != nil {
		c.removeLocked(old)
	} else if len(c.entries[key.FP]) > 0 {
		c.t.Collisions++
	}
	for c.maxBytes > 0 && c.bytes+size > c.maxBytes && len(c.evict) > 0 {
		victim := heap.Pop(&c.evict).(*entry)
		if victim.h > c.lval {
			c.lval = victim.h
		}
		c.unchainLocked(victim)
		c.bytes -= victim.bytes
		c.t.Evictions++
	}
	c.seq++
	e := &entry{
		key:   key,
		ans:   ans,
		bytes: size,
		cost:  float64(ans.Stats.WorkUnits() + 1),
		seq:   c.seq,
	}
	e.h = c.lval + e.cost/float64(e.bytes)
	heap.Push(&c.evict, e)
	c.entries[key.FP] = append(c.entries[key.FP], e)
	c.bytes += size
}

// removeLocked deletes an entry from both the heap and the chain
// without eviction accounting (used when replacing an exact key).
func (c *Cache) removeLocked(e *entry) {
	heap.Remove(&c.evict, e.hidx)
	c.unchainLocked(e)
	c.bytes -= e.bytes
}

// unchainLocked drops an entry from its fingerprint's collision chain.
func (c *Cache) unchainLocked(e *entry) {
	chain := c.entries[e.key.FP]
	for i, o := range chain {
		if o == e {
			chain[i] = chain[len(chain)-1]
			chain = chain[:len(chain)-1]
			break
		}
	}
	if len(chain) == 0 {
		delete(c.entries, e.key.FP)
	} else {
		c.entries[e.key.FP] = chain
	}
}

// entrySize is the deterministic byte accounting of one entry: the
// encoded key, the encoded best plan and frontier (what a worker would
// put on the wire for this answer), plus a fixed bookkeeping overhead.
func entrySize(key Key, ans *core.Answer) int64 {
	const overhead = 256 // entry struct, heap slot, chain slot, answer struct
	size := int64(len(key.Bytes)) + overhead
	if ans.Best != nil {
		size += int64(len(wire.EncodePlan(ans.Best)))
	}
	for _, p := range ans.Frontier {
		size += int64(len(wire.EncodePlan(p)))
	}
	return size
}

// stamped returns a shallow copy of ans carrying the per-answer cache
// record. The copy shares Best, Frontier and PerWorker with the cached
// answer — all immutable once optimization finished — so plan
// fingerprints are bit-identical to the original's.
func stamped(ans *core.Answer, snap Totals, hit, collapsed bool) *core.Answer {
	cp := *ans
	cp.Cache = &core.CacheStats{
		Hit:       hit,
		Collapsed: collapsed,
		Hits:      snap.Hits,
		Misses:    snap.Misses,
		Collapses: snap.Collapses,
		Evictions: snap.Evictions,
		Entries:   snap.Entries,
		Bytes:     snap.Bytes,
	}
	return &cp
}

// entryHeap is a min-heap over GreedyDual priority h, ties broken by
// insertion order (older first) so eviction order is deterministic.
type entryHeap []*entry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	if h[i].h != h[j].h {
		return h[i].h < h[j].h
	}
	return h[i].seq < h[j].seq
}
func (h entryHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].hidx, h[j].hidx = i, j
}
func (h *entryHeap) Push(x any) {
	e := x.(*entry)
	e.hidx = len(*h)
	*h = append(*h, e)
}
func (h *entryHeap) Pop() any {
	old := *h
	e := old[len(old)-1]
	old[len(old)-1] = nil
	*h = old[:len(old)-1]
	return e
}
