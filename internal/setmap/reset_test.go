package setmap

import (
	"math/rand"
	"sort"
	"testing"

	"mpq/internal/bitset"
)

// Reset must empty the map, hide every stale key, and keep the backing
// arrays whenever they are big enough.
func TestResetEmptiesAndRetainsArrays(t *testing.T) {
	m := New[int](1000)
	for i := 1; i <= 1000; i++ {
		m.Put(bitset.Set(i), i)
	}
	m.Put(bitset.Empty(), 42)
	c0 := m.Cap()

	m.Reset(500) // smaller run: capacity must be retained, not shrunk
	if m.Cap() != c0 {
		t.Fatalf("Reset(500) changed capacity %d -> %d", c0, m.Cap())
	}
	if m.Len() != 0 {
		t.Fatalf("Len after Reset = %d", m.Len())
	}
	if m.Contains(bitset.Empty()) {
		t.Fatal("zero key survived Reset")
	}
	for i := 1; i <= 1000; i++ {
		if m.Contains(bitset.Set(i)) {
			t.Fatalf("stale key %d visible after Reset", i)
		}
	}
	m.ForEach(func(k bitset.Set, v int) {
		t.Fatalf("ForEach visited (%v,%d) on a reset map", k, v)
	})

	// A bigger hint than the arrays can hold must grow them.
	m.Reset(10 * 1000)
	if m.Cap() <= c0 {
		t.Fatalf("Reset(10000) kept capacity %d", m.Cap())
	}
	if m.Len() != 0 {
		t.Fatalf("Len after growing Reset = %d", m.Len())
	}
}

// Reset must clear retained value slots so a pooled map cannot pin the
// previous run's plans through invisible entries.
func TestResetClearsValues(t *testing.T) {
	m := New[*int](64)
	x := new(int)
	for i := 1; i <= 64; i++ {
		m.Put(bitset.Set(i), x)
	}
	m.Reset(64)
	for i := range m.vals {
		if m.vals[i] != nil {
			t.Fatalf("vals[%d] still set after Reset", i)
		}
	}
	if m.zeroVal != nil {
		t.Fatal("zeroVal still set after Reset")
	}
}

// A reset map with stale (larger) capacity must behave exactly like a
// fresh map under a random workload — same contents, same lookups —
// even though its iteration order may differ. This is the contract the
// pooled DP memos rely on.
func TestResetStaleCapacityAgreesWithFresh(t *testing.T) {
	pooled := New[int](1 << 14) // oversize, as a pool survivor would be
	for i := 1; i <= 1<<14; i++ {
		pooled.Put(bitset.Set(i), i) // stale keys everywhere
	}
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 5; round++ {
		pooled.Reset(300)
		fresh := New[int](300)
		keys := make([]bitset.Set, 0, 300)
		for i := 0; i < 300; i++ {
			k := bitset.Set(rng.Uint64())
			keys = append(keys, k)
			v := int(k % 1000)
			pooled.Put(k, v)
			fresh.Put(k, v)
		}
		if pooled.Len() != fresh.Len() {
			t.Fatalf("round %d: Len %d != %d", round, pooled.Len(), fresh.Len())
		}
		for _, k := range keys {
			pv, pok := pooled.Get(k)
			fv, fok := fresh.Get(k)
			if pok != fok || pv != fv {
				t.Fatalf("round %d key %v: pooled (%d,%v) fresh (%d,%v)", round, k, pv, pok, fv, fok)
			}
		}
		// Iteration yields the same multiset of entries; order is
		// explicitly unspecified (and in general differs here, because
		// the stale capacity changes the probe mask), so compare sorted.
		collect := func(m *Map[int]) []uint64 {
			var out []uint64
			m.ForEach(func(k bitset.Set, v int) { out = append(out, uint64(k)^uint64(v)<<32) })
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out
		}
		p, f := collect(pooled), collect(fresh)
		if len(p) != len(f) {
			t.Fatalf("round %d: iteration counts differ %d vs %d", round, len(p), len(f))
		}
		for i := range p {
			if p[i] != f[i] {
				t.Fatalf("round %d: iteration contents differ at %d", round, i)
			}
		}
	}
}

// GetRef must return stable pointers through which updates are visible,
// and agree with Get.
func TestGetRef(t *testing.T) {
	m := New[int](64)
	if _, ok := m.GetRef(bitset.Of(3)); ok {
		t.Fatal("GetRef hit on empty map")
	}
	m.Put(bitset.Of(3), 30)
	m.Put(bitset.Empty(), 5)
	ref, ok := m.GetRef(bitset.Of(3))
	if !ok || *ref != 30 {
		t.Fatalf("GetRef = %v,%v", ref, ok)
	}
	*ref = 31
	if v, _ := m.Get(bitset.Of(3)); v != 31 {
		t.Fatalf("write through GetRef invisible: %d", v)
	}
	// Inserting other keys (no growth: presized) must not move the slot.
	for i := 10; i < 40; i++ {
		m.Put(bitset.Set(i), i)
	}
	if *ref != 31 {
		t.Fatal("GetRef pointer invalidated by non-growing Put")
	}
	zref, ok := m.GetRef(bitset.Empty())
	if !ok || *zref != 5 {
		t.Fatalf("zero-key GetRef = %v,%v", zref, ok)
	}
	var miss bool
	if allocs := testing.AllocsPerRun(1000, func() { _, miss = m.GetRef(bitset.Of(3)) }); allocs != 0 {
		t.Errorf("GetRef allocates %.1f times per call", allocs)
	}
	_ = miss
}
