// Package setmap implements a fast open-addressing hash map keyed by
// table sets (uint64 bitmasks).
//
// The optimizer memo performs hundreds of millions of lookups for large
// queries; this map avoids the allocation and hashing overhead of Go's
// built-in map for the specific case of uint64 keys that are already
// well-mixed bit patterns. It uses linear probing with a splitmix64
// finalizer and grows at 70% load. Deletion is intentionally not
// supported: the dynamic-programming memo only ever inserts.
package setmap

import "mpq/internal/bitset"

const (
	initialCapacity = 64 // must be a power of two
	maxLoadNum      = 7  // grow when len > cap * 7/10
	maxLoadDen      = 10
)

// Map is a hash map from bitset.Set to V. The zero value is not usable;
// call New. Not safe for concurrent mutation.
type Map[V any] struct {
	keys     []uint64
	vals     []V
	occupied []bool
	n        int

	hasZero bool // key 0 stored out of line
	zeroVal V
}

// New returns an empty map with capacity for at least sizeHint entries
// before the first grow.
func New[V any](sizeHint int) *Map[V] {
	capacity := capacityFor(sizeHint)
	return &Map[V]{
		keys:     make([]uint64, capacity),
		vals:     make([]V, capacity),
		occupied: make([]bool, capacity),
	}
}

// capacityFor returns the power-of-two table size that holds sizeHint
// entries without exceeding the load factor.
func capacityFor(sizeHint int) int {
	capacity := initialCapacity
	for capacity*maxLoadNum/maxLoadDen <= sizeHint {
		capacity *= 2
	}
	return capacity
}

// Reset empties the map while retaining its backing arrays whenever
// they can hold sizeHint entries without growing; otherwise fresh
// arrays of the required size are allocated. Retained values are
// cleared so a pooled map cannot pin plan memory, but retained key
// slots keep their stale contents (the occupied flags gate them), and
// the table may be larger than New(sizeHint) would build — so a reused
// map's Keys/ForEach order generally differs from a fresh map's.
// Callers must never depend on iteration order (see ForEach).
func (m *Map[V]) Reset(sizeHint int) {
	if capacity := capacityFor(sizeHint); capacity > len(m.keys) {
		m.keys = make([]uint64, capacity)
		m.vals = make([]V, capacity)
		m.occupied = make([]bool, capacity)
	} else {
		// Clear only the live value slots (O(entries) plus a 1-byte-per-
		// slot occupancy scan) rather than memsetting the whole vals
		// array: a pool-retained map keeps the capacity of the largest
		// query it ever served, and a full multi-MB memset would tax
		// every small query drawn from the pool afterwards.
		var zero V
		for i, occ := range m.occupied {
			if occ {
				m.vals[i] = zero
			}
		}
		clear(m.occupied)
	}
	m.n = 0
	m.hasZero = false
	var zero V
	m.zeroVal = zero
}

// mix is the splitmix64 finalizer; it turns structured bitmask keys into
// uniformly distributed probe sequences.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Cap returns the current table capacity (number of slots). A map built
// with New(hint) holding at most hint entries never grows past its
// initial capacity — the no-rehash guarantee the DP memo relies on.
func (m *Map[V]) Cap() int { return len(m.keys) }

// Len returns the number of stored entries.
func (m *Map[V]) Len() int {
	if m.hasZero {
		return m.n + 1
	}
	return m.n
}

// Get returns the value stored for key and whether it was present.
func (m *Map[V]) Get(key bitset.Set) (V, bool) {
	k := uint64(key)
	if k == 0 {
		return m.zeroVal, m.hasZero
	}
	mask := uint64(len(m.keys) - 1)
	i := mix(k) & mask
	for m.occupied[i] {
		if m.keys[i] == k {
			return m.vals[i], true
		}
		i = (i + 1) & mask
	}
	var zero V
	return zero, false
}

// GetRef returns a pointer to the value slot stored for key, or nil if
// the key is absent. The pointer stays valid until the map grows or is
// Reset — a map built with New(hint) or Reset(hint) and holding at most
// hint entries never grows, which is the no-rehash guarantee the DP
// memo's hot loop relies on to read entries without copying them.
func (m *Map[V]) GetRef(key bitset.Set) (*V, bool) {
	k := uint64(key)
	if k == 0 {
		if m.hasZero {
			return &m.zeroVal, true
		}
		return nil, false
	}
	mask := uint64(len(m.keys) - 1)
	i := mix(k) & mask
	for m.occupied[i] {
		if m.keys[i] == k {
			return &m.vals[i], true
		}
		i = (i + 1) & mask
	}
	return nil, false
}

// Contains reports whether key is present.
func (m *Map[V]) Contains(key bitset.Set) bool {
	_, ok := m.Get(key)
	return ok
}

// Put stores val under key, replacing any existing value.
func (m *Map[V]) Put(key bitset.Set, val V) {
	k := uint64(key)
	if k == 0 {
		m.zeroVal = val
		m.hasZero = true
		return
	}
	if (m.n+1)*maxLoadDen > len(m.keys)*maxLoadNum {
		m.grow()
	}
	mask := uint64(len(m.keys) - 1)
	i := mix(k) & mask
	for m.occupied[i] {
		if m.keys[i] == k {
			m.vals[i] = val
			return
		}
		i = (i + 1) & mask
	}
	m.keys[i] = k
	m.vals[i] = val
	m.occupied[i] = true
	m.n++
}

// GetOrPut returns the existing value for key, or stores and returns
// fallback if the key was absent. The boolean reports whether the key
// already existed.
func (m *Map[V]) GetOrPut(key bitset.Set, fallback V) (V, bool) {
	if v, ok := m.Get(key); ok {
		return v, true
	}
	m.Put(key, fallback)
	return fallback, false
}

func (m *Map[V]) grow() {
	oldKeys, oldVals, oldOcc := m.keys, m.vals, m.occupied
	capacity := len(oldKeys) * 2
	m.keys = make([]uint64, capacity)
	m.vals = make([]V, capacity)
	m.occupied = make([]bool, capacity)
	m.n = 0
	for i, occ := range oldOcc {
		if occ {
			m.Put(bitset.Set(oldKeys[i]), oldVals[i])
		}
	}
}

// ForEach calls fn for every entry in unspecified order — the order
// depends on the table capacity, which for a Reset (pooled) map may be
// larger than a fresh map's, so even identical contents can iterate
// differently. Callers that aggregate across entries must therefore be
// order-insensitive or sort; the optimizer's masters never iterate the
// memo and order worker aggregation by partition ID instead. fn must
// not mutate the map.
func (m *Map[V]) ForEach(fn func(key bitset.Set, val V)) {
	if m.hasZero {
		fn(0, m.zeroVal)
	}
	for i, occ := range m.occupied {
		if occ {
			fn(bitset.Set(m.keys[i]), m.vals[i])
		}
	}
}

// Keys returns all keys in unspecified order.
func (m *Map[V]) Keys() []bitset.Set {
	out := make([]bitset.Set, 0, m.Len())
	m.ForEach(func(k bitset.Set, _ V) { out = append(out, k) })
	return out
}
