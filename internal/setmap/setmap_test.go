package setmap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpq/internal/bitset"
)

func TestEmptyMap(t *testing.T) {
	m := New[int](0)
	if m.Len() != 0 {
		t.Fatalf("Len = %d", m.Len())
	}
	if _, ok := m.Get(bitset.Of(1)); ok {
		t.Fatal("Get on empty map returned ok")
	}
	if m.Contains(0) {
		t.Fatal("Contains(0) on empty map")
	}
}

func TestPutGet(t *testing.T) {
	m := New[string](4)
	m.Put(bitset.Of(1, 2), "a")
	m.Put(bitset.Of(3), "b")
	if v, ok := m.Get(bitset.Of(1, 2)); !ok || v != "a" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	if v, ok := m.Get(bitset.Of(3)); !ok || v != "b" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	if _, ok := m.Get(bitset.Of(1)); ok {
		t.Fatal("absent key found")
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestPutOverwrites(t *testing.T) {
	m := New[int](0)
	k := bitset.Of(5, 9)
	m.Put(k, 1)
	m.Put(k, 2)
	if v, _ := m.Get(k); v != 2 {
		t.Fatalf("value = %d", v)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestZeroKey(t *testing.T) {
	m := New[int](0)
	if m.Contains(bitset.Empty()) {
		t.Fatal("empty-set key present before Put")
	}
	m.Put(bitset.Empty(), 42)
	if v, ok := m.Get(bitset.Empty()); !ok || v != 42 {
		t.Fatalf("zero key get = %d,%v", v, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
	m.Put(bitset.Empty(), 7)
	if v, _ := m.Get(bitset.Empty()); v != 7 {
		t.Fatal("zero key overwrite failed")
	}
	if m.Len() != 1 {
		t.Fatalf("Len after overwrite = %d", m.Len())
	}
}

func TestGetOrPut(t *testing.T) {
	m := New[int](0)
	v, existed := m.GetOrPut(bitset.Of(2), 10)
	if existed || v != 10 {
		t.Fatalf("first GetOrPut = %d,%v", v, existed)
	}
	v, existed = m.GetOrPut(bitset.Of(2), 99)
	if !existed || v != 10 {
		t.Fatalf("second GetOrPut = %d,%v", v, existed)
	}
}

func TestGrowthPreservesEntries(t *testing.T) {
	m := New[int](0)
	const n = 10000
	for i := 1; i <= n; i++ {
		m.Put(bitset.Set(i), i*3)
	}
	if m.Len() != n {
		t.Fatalf("Len = %d want %d", m.Len(), n)
	}
	for i := 1; i <= n; i++ {
		if v, ok := m.Get(bitset.Set(i)); !ok || v != i*3 {
			t.Fatalf("key %d: got %d,%v", i, v, ok)
		}
	}
}

func TestForEachVisitsAllOnce(t *testing.T) {
	m := New[int](0)
	want := map[bitset.Set]int{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		k := bitset.Set(rng.Uint64() >> 1)
		want[k] = i
		m.Put(k, i)
	}
	got := map[bitset.Set]int{}
	m.ForEach(func(k bitset.Set, v int) {
		if _, dup := got[k]; dup {
			t.Fatalf("key %v visited twice", k)
		}
		got[k] = v
	})
	if len(got) != len(want) {
		t.Fatalf("visited %d entries want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %v: got %d want %d", k, got[k], v)
		}
	}
}

func TestKeys(t *testing.T) {
	m := New[int](0)
	m.Put(bitset.Of(1), 1)
	m.Put(bitset.Of(2), 2)
	m.Put(bitset.Empty(), 0)
	ks := m.Keys()
	if len(ks) != 3 {
		t.Fatalf("Keys len = %d", len(ks))
	}
}

// Property: setmap agrees with the built-in map under a random workload.
func TestQuickAgainstBuiltinMap(t *testing.T) {
	f := func(keys []uint64, vals []int64) bool {
		m := New[int64](0)
		ref := map[uint64]int64{}
		for i, k := range keys {
			var v int64
			if i < len(vals) {
				v = vals[i]
			}
			m.Put(bitset.Set(k), v)
			ref[k] = v
		}
		if m.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := m.Get(bitset.Set(k))
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeHintAvoidsEarlyGrowth(t *testing.T) {
	m := New[int](1000)
	capBefore := len(m.keys)
	for i := 1; i <= 1000; i++ {
		m.Put(bitset.Set(i), i)
	}
	if len(m.keys) != capBefore {
		t.Fatalf("map grew from %d to %d despite size hint", capBefore, len(m.keys))
	}
}

func BenchmarkPutGet(b *testing.B) {
	m := New[int](1 << 20)
	keys := make([]bitset.Set, 1<<16)
	rng := rand.New(rand.NewSource(42))
	for i := range keys {
		keys[i] = bitset.Set(rng.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i&(len(keys)-1)]
		m.Put(k, i)
		if _, ok := m.Get(k); !ok {
			b.Fatal("missing key")
		}
	}
}

func BenchmarkGetVsBuiltin(b *testing.B) {
	const n = 1 << 18
	keys := make([]bitset.Set, n)
	rng := rand.New(rand.NewSource(42))
	m := New[int](n)
	ref := make(map[bitset.Set]int, n)
	for i := range keys {
		keys[i] = bitset.Set(rng.Uint64() | 1)
		m.Put(keys[i], i)
		ref[keys[i]] = i
	}
	b.Run("setmap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := m.Get(keys[i&(n-1)]); !ok {
				b.Fatal("missing")
			}
		}
	})
	b.Run("builtin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := ref[keys[i&(n-1)]]; !ok {
				b.Fatal("missing")
			}
		}
	})
}

// A Get hit is on the DP's candidate path and must never allocate.
func TestGetHitAllocFree(t *testing.T) {
	m := New[int](256)
	for i := 1; i <= 256; i++ {
		m.Put(bitset.Set(i), i)
	}
	var v int
	var ok bool
	if allocs := testing.AllocsPerRun(1000, func() { v, ok = m.Get(bitset.Set(123)) }); allocs != 0 {
		t.Errorf("Get hit allocates %.1f times per call", allocs)
	}
	if !ok || v != 123 {
		t.Fatalf("Get(123) = %d, %v", v, ok)
	}
}

// A map sized with New(hint) must never rehash while holding at most
// hint entries — the DP memo is sized from CountAdmissible and relies
// on this.
func TestSizedMapNeverGrows(t *testing.T) {
	const hint = 1000
	m := New[int](hint)
	c0 := m.Cap()
	for i := 1; i <= hint; i++ {
		m.Put(bitset.Set(i), i)
	}
	if m.Cap() != c0 {
		t.Fatalf("map sized for %d entries grew from %d to %d slots", hint, c0, m.Cap())
	}
	if m.Len() != hint {
		t.Fatalf("Len = %d want %d", m.Len(), hint)
	}
}
