//lint:file-ignore SA1019 TestArenaOnOffBitIdenticalLegacySerial pins the deprecated serial wrapper to the arena bit-identity guarantee on purpose.

package mpq_test

import (
	"context"
	"fmt"
	"testing"

	"mpq"
	"mpq/internal/core"
	"mpq/internal/dp"
	"mpq/internal/partition"
	"mpq/internal/plan"
	"mpq/internal/wire"
)

// arenaOffReference computes the answer the way the pre-arena optimizer
// did: one heap-allocating DP run per partition (Options.DisableArena),
// aggregated in partition-ID order by the shared FinalPrune. Every
// engine — all of which now run arena-backed, pooled workers — must
// return bit-identical wire fingerprints.
func arenaOffReference(t *testing.T, q *mpq.Query, spec mpq.JobSpec) (best string, frontier []string) {
	t.Helper()
	workers := spec.Workers
	frontiers := make([][]*plan.Node, 0, workers)
	for partID := 0; partID < workers; partID++ {
		cs, err := partition.ForPartition(spec.Space, q.N(), partID, workers)
		if err != nil {
			t.Fatal(err)
		}
		opts := spec.DPOptions()
		opts.DisableArena = true
		res, err := dp.Run(q, cs, opts)
		if err != nil {
			t.Fatal(err)
		}
		frontiers = append(frontiers, res.Plans)
	}
	b, f, err := core.FinalPrune(spec, frontiers)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(f))
	for i, p := range f {
		out[i] = wire.PlanFingerprint(p)
	}
	return wire.PlanFingerprint(b), out
}

// TestArenaOnOffBitIdenticalAcrossEngines pins the tentpole's safety
// claim end to end: arena-backed, pooled execution must be
// bit-identical (wire fingerprints) to the heap-allocating reference on
// every workload family and through all four engines. The engines run
// in sequence against the same worker pool, so later rows also exercise
// pooled runtimes with stale capacity left by earlier (larger) rows.
func TestArenaOnOffBitIdenticalAcrossEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-engine sweep; run without -short")
	}
	tcp, _ := startTCPEngine(t, 2)
	engines := []struct {
		name string
		eng  mpq.Engine
	}{
		{"inprocess", mpq.NewInProcessEngine()},
		{"sim", mpq.NewSimEngine()},
		{"tcp", tcp},
	}
	serial := mpq.NewSerialEngine()
	ctx := context.Background()
	for _, row := range engineWorkloads(t) {
		t.Run(row.name, func(t *testing.T) {
			wantBest, wantFrontier := arenaOffReference(t, row.q, row.spec)
			for _, e := range engines {
				ans, err := e.eng.Optimize(ctx, row.q, row.spec)
				if err != nil {
					t.Fatalf("%s: %v", e.name, err)
				}
				if got := mpq.PlanFingerprint(ans.Best); got != wantBest {
					t.Fatalf("%s: arena-backed best plan differs from heap reference: %s", e.name, ans.Best)
				}
				if len(ans.Frontier) != len(wantFrontier) {
					t.Fatalf("%s: frontier size %d != %d", e.name, len(ans.Frontier), len(wantFrontier))
				}
				for i, p := range ans.Frontier {
					if mpq.PlanFingerprint(p) != wantFrontier[i] {
						t.Fatalf("%s: frontier plan %d differs from heap reference", e.name, i)
					}
				}
			}
			// The serial engine searches the unpartitioned space: compare
			// against the heap reference of the same (workers=1) search.
			serialSpec := row.spec
			serialSpec.Workers = 1
			serialWant, _ := arenaOffReference(t, row.q, serialSpec)
			ans, err := serial.Optimize(ctx, row.q, row.spec)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			if got := mpq.PlanFingerprint(ans.Best); got != serialWant {
				t.Fatalf("serial: arena-backed best plan differs from heap reference: %s", ans.Best)
			}
		})
	}
}

// The deprecated free functions ride the same arena path; pin one of
// them too so the legacy surface keeps the bit-identity guarantee.
func TestArenaOnOffBitIdenticalLegacySerial(t *testing.T) {
	for _, space := range []mpq.Space{mpq.Linear, mpq.Bushy} {
		t.Run(fmt.Sprint(space), func(t *testing.T) {
			_, q, err := mpq.GenerateWorkload(mpq.NewWorkloadParams(8, mpq.Cycle), 11)
			if err != nil {
				t.Fatal(err)
			}
			spec := mpq.JobSpec{Space: space, Workers: 1, InterestingOrders: true}
			wantBest, _ := arenaOffReference(t, q, spec)
			got, err := mpq.OptimizeSerial(q, space, true)
			if err != nil {
				t.Fatal(err)
			}
			if mpq.PlanFingerprint(got) != wantBest {
				t.Fatalf("%v: legacy serial plan differs from heap reference", space)
			}
		})
	}
}
