package mpq

import (
	"context"
	"fmt"
	"time"

	"mpq/internal/cache"
	"mpq/internal/cluster"
	"mpq/internal/core"
	"mpq/internal/cost"
	"mpq/internal/netrun"
)

// Engine is the unified optimizer interface: one partitioning scheme,
// four execution substrates. Every engine runs the identical worker
// code on the identical plan-space partitions, so for the same query
// and JobSpec all engines return the same optimal plan (bit-identical
// under wire encoding) — the paper's central claim, expressed as an
// interface.
//
//   - NewSerialEngine   — the classical single-node dynamic program.
//   - NewInProcessEngine — goroutine workers in this process.
//   - NewSimEngine      — the deterministic shared-nothing cluster
//     simulator; answers carry ClusterMetrics.
//   - NewTCPEngine      — the fault-tolerant TCP master/worker runtime;
//     answers carry NetStats.
//
// Optimize runs one query. OptimizeBatch pipelines a batch of
// independent queries through the engine; answers come back in input
// order and are bit-identical to running each job by itself. Both
// honor ctx: cancellation stops the dynamic program between (and
// periodically within) cardinality levels, aborts in-flight network
// work, and returns an error wrapping context.Canceled (or
// context.DeadlineExceeded) with no goroutine left behind. Per-job
// deadlines flow from context.WithDeadline.
type Engine interface {
	Optimize(ctx context.Context, q *Query, spec JobSpec) (*Answer, error)
	OptimizeBatch(ctx context.Context, jobs []Job) ([]*Answer, error)
}

// Job is one (query, job spec) unit of an OptimizeBatch call.
type Job struct {
	Query *Query
	Spec  JobSpec
}

// NetStats records the measured TCP traffic of a distributed answer
// (TCPEngine); see Answer.Net.
type NetStats = core.NetStats

// EngineOption configures an engine constructor. Options apply to the
// engines they are meaningful for and are ignored by the others, so
// one option list can configure a table of engines:
//
//	WithParallelism   — InProcessEngine
//	WithClusterModel  — SimEngine
//	WithClusterFaults — SimEngine
//	WithMasterOptions — TCPEngine
//	WithCostModel     — every engine
type EngineOption func(*engineConfig)

type engineConfig struct {
	parallelism  int
	clusterModel ClusterModel
	faults       ClusterFaults
	faultsSet    bool
	masterOpts   MasterOptions
	costModel    CostModel
}

func newEngineConfig(opts []EngineOption) engineConfig {
	cfg := engineConfig{clusterModel: cluster.Default()}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// applySpec fills spec defaults the engine was configured with: a job
// that does not choose its own cost model inherits the engine's.
func (c *engineConfig) applySpec(spec JobSpec) JobSpec {
	if spec.CostModel == (cost.Model{}) {
		spec.CostModel = c.costModel
	}
	return spec
}

// WithParallelism caps the number of concurrently running worker
// goroutines of an InProcessEngine (the paper's executors-per-node
// knob). n < 1 means one goroutine per plan-space partition.
func WithParallelism(n int) EngineOption {
	return func(c *engineConfig) { c.parallelism = n }
}

// WithClusterModel sets the simulated cluster parameters of a
// SimEngine. The default is DefaultClusterModel().
func WithClusterModel(m ClusterModel) EngineOption {
	return func(c *engineConfig) { c.clusterModel = m }
}

// WithClusterFaults scripts worker deaths for every query a SimEngine
// optimizes; the recovery overhead shows up in Answer.Cluster.
func WithClusterFaults(f ClusterFaults) EngineOption {
	return func(c *engineConfig) { c.faults = f; c.faultsSet = true }
}

// WithMasterOptions sets the fault-tolerance configuration of a
// TCPEngine: per-attempt timeout, retry budget, worker exclusion, and
// per-worker weights.
func WithMasterOptions(o MasterOptions) EngineOption {
	return func(c *engineConfig) { c.masterOpts = o }
}

// WithCostModel sets the engine's default cost model, used by every
// job whose JobSpec.CostModel is the zero value. The zero default is
// DefaultCostModel().
func WithCostModel(m CostModel) EngineOption {
	return func(c *engineConfig) { c.costModel = m }
}

// sequentialBatch runs a batch one job at a time through eng — the
// batch semantics of the engines whose substrate has no cross-query
// state to share. Answers are bit-identical to individual Optimize
// calls by construction; the first failure aborts the batch.
func sequentialBatch(ctx context.Context, eng Engine, jobs []Job) ([]*Answer, error) {
	answers := make([]*Answer, len(jobs))
	for i, job := range jobs {
		ans, err := eng.Optimize(ctx, job.Query, job.Spec)
		if err != nil {
			return nil, fmt.Errorf("batch job %d: %w", i, err)
		}
		answers[i] = ans
	}
	return answers, nil
}

// SerialEngine is the classical single-node dynamic program — the
// baseline every speedup is measured against. It ignores
// JobSpec.Workers and always searches the unpartitioned plan space
// with one worker.
type SerialEngine struct {
	cfg engineConfig
}

// NewSerialEngine returns the baseline serial engine. Applicable
// options: WithCostModel.
func NewSerialEngine(opts ...EngineOption) *SerialEngine {
	return &SerialEngine{cfg: newEngineConfig(opts)}
}

// Optimize implements Engine by running the unconstrained dynamic
// program (JobSpec.Workers is overridden to 1).
func (e *SerialEngine) Optimize(ctx context.Context, q *Query, spec JobSpec) (*Answer, error) {
	spec = e.cfg.applySpec(spec)
	spec.Workers = 1
	return core.OptimizeContext(ctx, q, spec, 1)
}

// OptimizeBatch implements Engine by optimizing the jobs sequentially.
func (e *SerialEngine) OptimizeBatch(ctx context.Context, jobs []Job) ([]*Answer, error) {
	return sequentialBatch(ctx, e, jobs)
}

// InProcessEngine runs MPQ with goroutine workers — the shared-nothing
// algorithm on a single machine, one goroutine per plan-space
// partition (capped by WithParallelism).
//
// Worker goroutines draw their DP memory (plan-node arena + memo
// table) from a process-wide recycled pool, so a stream of queries —
// in particular OptimizeBatch — reaches a steady state that allocates
// almost nothing per job: the first job grows the pool, later jobs
// borrow it back. See docs/perf.md for the design and measured
// numbers.
type InProcessEngine struct {
	cfg engineConfig
}

// NewInProcessEngine returns the goroutine-worker engine. Applicable
// options: WithParallelism, WithCostModel.
func NewInProcessEngine(opts ...EngineOption) *InProcessEngine {
	return &InProcessEngine{cfg: newEngineConfig(opts)}
}

// Optimize implements Engine.
func (e *InProcessEngine) Optimize(ctx context.Context, q *Query, spec JobSpec) (*Answer, error) {
	return core.OptimizeContext(ctx, q, e.cfg.applySpec(spec), e.cfg.parallelism)
}

// OptimizeBatch implements Engine by optimizing the jobs sequentially;
// each job already fans out across the configured goroutine workers,
// and jobs after the first reuse the pooled worker memory (memo
// capacity and arena slabs) the earlier jobs grew.
func (e *InProcessEngine) OptimizeBatch(ctx context.Context, jobs []Job) ([]*Answer, error) {
	return sequentialBatch(ctx, e, jobs)
}

// SimEngine runs MPQ on the deterministic shared-nothing cluster
// simulator: real worker code, byte-exact network accounting, virtual
// time. Every Answer carries the simulator's measurement record in
// Answer.Cluster.
type SimEngine struct {
	cfg engineConfig
}

// NewSimEngine returns the cluster-simulation engine. Applicable
// options: WithClusterModel, WithClusterFaults, WithCostModel.
func NewSimEngine(opts ...EngineOption) *SimEngine {
	return &SimEngine{cfg: newEngineConfig(opts)}
}

// Optimize implements Engine. Answer.Elapsed is the real wall-clock
// time of the simulation; Answer.MaxWorkerElapsed and the per-worker
// report Elapsed values are *virtual* compute times under the cluster
// model, and the cluster's virtual time, traffic and per-worker memory
// peak are in Answer.Cluster.
func (e *SimEngine) Optimize(ctx context.Context, q *Query, spec JobSpec) (*Answer, error) {
	spec = e.cfg.applySpec(spec)
	start := time.Now()
	var res *cluster.Result
	var err error
	if e.cfg.faultsSet {
		res, err = cluster.RunMPQWithFaultsContext(ctx, e.cfg.clusterModel, q, spec, e.cfg.faults)
	} else {
		res, err = cluster.RunMPQContext(ctx, e.cfg.clusterModel, q, spec)
	}
	if err != nil {
		return nil, err
	}
	met := res.Metrics
	return &Answer{
		Best:             res.Best,
		Frontier:         res.Frontier,
		Stats:            met.Work,
		MaxWorkerStats:   res.MaxWorkerStats,
		PerWorker:        res.PerWorker,
		Elapsed:          time.Since(start),
		MaxWorkerElapsed: met.MaxWorkerTime,
		Cluster:          &met,
	}, nil
}

// OptimizeBatch implements Engine by simulating the jobs sequentially
// (the simulator models one query occupying the cluster at a time).
func (e *SimEngine) OptimizeBatch(ctx context.Context, jobs []Job) ([]*Answer, error) {
	return sequentialBatch(ctx, e, jobs)
}

// TCPEngine runs MPQ over the fault-tolerant TCP master/worker
// runtime. Every Answer carries measured traffic in Answer.Net.
// OptimizeBatch pipelines the partitions of many queries through one
// pool of keep-alive connections — in a failure-free batch the master
// dials each worker exactly once (observable as Answer.Net.Dials;
// transport failures force redials).
type TCPEngine struct {
	ms  *netrun.Master
	cfg engineConfig
}

// NewTCPEngine returns a TCP engine over the given worker addresses
// (start workers with ListenWorker or `mpqnode worker`). Applicable
// options: WithMasterOptions, WithCostModel.
func NewTCPEngine(addrs []string, opts ...EngineOption) (*TCPEngine, error) {
	cfg := newEngineConfig(opts)
	ms, err := netrun.NewMasterWithOptions(addrs, cfg.masterOpts)
	if err != nil {
		return nil, err
	}
	return &TCPEngine{ms: ms, cfg: cfg}, nil
}

// Optimize implements Engine. The runtime fills Answer.Net directly.
func (e *TCPEngine) Optimize(ctx context.Context, q *Query, spec JobSpec) (*Answer, error) {
	na, err := e.ms.OptimizeContext(ctx, q, e.cfg.applySpec(spec))
	if err != nil {
		return nil, err
	}
	return &na.Answer, nil
}

// OptimizeBatch implements Engine; see netrun.Master.OptimizeBatch for
// the dispatch and failure semantics.
func (e *TCPEngine) OptimizeBatch(ctx context.Context, jobs []Job) ([]*Answer, error) {
	njobs := make([]netrun.Job, len(jobs))
	for i, job := range jobs {
		njobs[i] = netrun.Job{Query: job.Query, Spec: e.cfg.applySpec(job.Spec)}
	}
	nas, err := e.ms.OptimizeBatch(ctx, njobs)
	if err != nil {
		return nil, err
	}
	answers := make([]*Answer, len(nas))
	for i, na := range nas {
		answers[i] = &na.Answer
	}
	return answers, nil
}

// CacheConfig parameterizes the plan cache of a CachedEngine.
// MaxBytes is the eviction budget (encoded keys + encoded plans +
// bookkeeping); 0 means unlimited.
type CacheConfig = cache.Config

// CacheTotals is a snapshot of a CachedEngine's cache-wide counters:
// hits, misses, singleflight/batch collapses, evictions, fingerprint
// collisions, and current occupancy.
type CacheTotals = cache.Totals

// CachedEngine wraps any Engine with a fingerprint-keyed plan cache:
// repeated optimization requests are served from the store instead of
// re-running the dynamic program, concurrent identical requests
// collapse onto one computation (singleflight), and the store is kept
// under a byte budget by cost-weighted LRU eviction (expensive-to-
// recompute plans survive longer). Build one with WithCache.
//
// Cached answers are bit-identical (wire plan fingerprint) to the
// wrapped engine's answers: the cache serves shallow copies sharing the
// immutable plan trees. Each answer's Answer.Cache records whether it
// was a hit, a collapse, or a miss, plus the cache-wide counters at
// serve time.
//
// The cache keys on the canonical wire encoding of (query, JobSpec) —
// join graph, cardinalities, selectivities, plan space, worker count,
// objective and cost model — so anything that could change the chosen
// plan changes the key. Note that a zero JobSpec.CostModel is resolved
// to the engine's default *inside* the wrapped engine: each
// CachedEngine owns a private cache, so a zero-model key can never
// alias across engines configured with different WithCostModel
// defaults.
type CachedEngine struct {
	inner Engine
	cache *cache.Cache
}

// WithCache wraps an engine with a plan cache. It composes with every
// engine — serial, in-process, simulated and TCP — because it sits
// entirely above the Engine interface.
func WithCache(eng Engine, cfg CacheConfig) *CachedEngine {
	return &CachedEngine{inner: eng, cache: cache.New(cfg)}
}

// Optimize implements Engine. A stored answer is served without
// touching the wrapped engine; concurrent identical misses run one
// inner Optimize. If the computing caller's context is canceled
// mid-flight, leadership hands off to a waiting identical request
// rather than failing it.
func (e *CachedEngine) Optimize(ctx context.Context, q *Query, spec JobSpec) (*Answer, error) {
	return e.cache.Optimize(ctx, q, spec, e.inner.Optimize)
}

// OptimizeBatch implements Engine with in-batch deduplication: cache
// hits are served from the store, duplicate jobs within the batch
// collapse onto one computation, and only the distinct misses reach the
// wrapped engine's OptimizeBatch — in a single call, so its batch
// pipelining (e.g. the TCP master's connection reuse) is preserved.
func (e *CachedEngine) OptimizeBatch(ctx context.Context, jobs []Job) ([]*Answer, error) {
	cjobs := make([]cache.BatchJob, len(jobs))
	for i, job := range jobs {
		cjobs[i] = cache.BatchJob{Query: job.Query, Spec: job.Spec}
	}
	return e.cache.OptimizeBatch(ctx, cjobs, func(ctx context.Context, miss []cache.BatchJob) ([]*Answer, error) {
		inner := make([]Job, len(miss))
		for i, job := range miss {
			inner[i] = Job{Query: job.Query, Spec: job.Spec}
		}
		return e.inner.OptimizeBatch(ctx, inner)
	})
}

// CacheTotals returns a snapshot of the cache-wide counters.
func (e *CachedEngine) CacheTotals() CacheTotals { return e.cache.Totals() }

// Compile-time proof that all engines implement Engine.
var (
	_ Engine = (*SerialEngine)(nil)
	_ Engine = (*InProcessEngine)(nil)
	_ Engine = (*SimEngine)(nil)
	_ Engine = (*TCPEngine)(nil)
	_ Engine = (*CachedEngine)(nil)
)
