// Join-graph sensitivity (the paper's Figure 3 in miniature): because
// the dynamic program enumerates the same table sets regardless of which
// predicates exist (cross products are allowed), chain, star, cycle and
// clique queries of the same size cost nearly the same to optimize —
// only the plans themselves differ.
//
// Run with: go run ./examples/joingraphs
// Try:      go run ./examples/joingraphs -engine serial
package main

import (
	"context"
	"fmt"
	"log"

	"mpq"
	"mpq/internal/cliutil"
)

func main() {
	eng := cliutil.MustParseEngine("local")
	ctx := context.Background()

	const n = 12
	fmt.Printf("optimizing %d-table queries, one per join-graph shape (Linear space, 8 workers)\n\n", n)
	fmt.Printf("%-10s %-12s %-12s %-10s %-24s\n", "shape", "work units", "best cost", "joins", "join order")
	for _, shape := range []mpq.Shape{mpq.Chain, mpq.Star, mpq.Cycle, mpq.Clique, mpq.Snowflake} {
		_, q, err := mpq.GenerateWorkload(mpq.NewWorkloadParams(n, shape), 11)
		if err != nil {
			log.Fatal(err)
		}
		ans, err := eng.Optimize(ctx, q, mpq.JobSpec{Space: mpq.Linear, Workers: 8})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10v %-12d %-12.4g %-10d %v\n",
			shape, ans.Stats.WorkUnits(), ans.Best.Cost, ans.Best.CountJoins(), ans.Best.JoinOrder())
	}

	fmt.Println("\nwork units differ by only a few percent across shapes — the")
	fmt.Println("plan-space size depends on the table count, not the predicates.")

	// The fixed TPC-style schemas give realistic statistics instead of
	// random ones (see docs/workloads.md).
	_, tpch, err := mpq.SchemaWorkload(mpq.TPCHSchema(), 1)
	if err != nil {
		log.Fatal(err)
	}
	ans, err := eng.Optimize(ctx, tpch, mpq.JobSpec{Space: mpq.Linear, Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTPC-H sf=1 (%d tables): best cost %.4g, join order %v\n",
		tpch.N(), ans.Best.Cost, ans.Best.JoinOrder())
}
