// Robustness to cardinality-estimation error: perturb a query's
// selectivities with seeded q-error noise, optimize both ways — trust
// the estimates (point) or hedge over an uncertainty band (robust) —
// and compare what the chosen plans really cost under the true
// selectivities.
//
// Run with: go run ./examples/robust
// Try:      go run ./examples/robust -engine serial
package main

import (
	"context"
	"fmt"
	"log"

	"mpq"
	"mpq/internal/cliutil"
)

func main() {
	eng := cliutil.MustParseEngine("local")
	ctx := context.Background()

	// A random 9-table star query; its generated selectivities are the
	// ground truth an estimator would be trying to hit.
	_, truth, err := mpq.GenerateWorkload(mpq.NewWorkloadParams(9, mpq.Star), 5)
	if err != nil {
		log.Fatal(err)
	}

	// What the optimizer actually sees: estimates with q-error up to 1+ε
	// per predicate. ε = 0 would return the query unchanged.
	const eps = 2.0
	noisy, err := mpq.PerturbQuery(truth, eps, 17)
	if err != nil {
		log.Fatal(err)
	}

	// Point optimization trusts the noisy estimates.
	point, err := eng.Optimize(ctx, noisy, mpq.JobSpec{Space: mpq.Linear, Workers: 4})
	if err != nil {
		log.Fatal(err)
	}

	// Robust optimization hedges: selectivities may exceed the estimates
	// by up to the band, and the chosen plan minimizes worst-case cost
	// over that band (the plan's Buffer annotation carries it).
	robust, err := eng.Optimize(ctx, noisy, mpq.JobSpec{
		Space: mpq.Linear, Workers: 4,
		Objective: mpq.RobustObjective, RobustBand: 1 + eps,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("robust frontier: %d plans; best hedges worst-case %.4g at nominal %.4g\n",
		len(robust.Frontier), robust.Best.Buffer, robust.Best.Cost)

	// The verdict comes from the true selectivities: re-cost both chosen
	// plans (and the true optimum) under the query the estimates were
	// approximating.
	m := mpq.DefaultCostModel()
	opt, err := eng.Optimize(ctx, truth, mpq.JobSpec{Space: mpq.Linear, Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	optTrue, err := mpq.ReannotatePlan(opt.Best, truth, m)
	if err != nil {
		log.Fatal(err)
	}
	pointTrue, err := mpq.ReannotatePlan(point.Best, truth, m)
	if err != nil {
		log.Fatal(err)
	}
	robustTrue, err := mpq.ReannotatePlan(robust.Best, truth, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrue cost of true-optimal plan: %.4g\n", optTrue.Cost)
	fmt.Printf("point plan : true cost %.4g (regret %.3f)\n", pointTrue.Cost, pointTrue.Cost/optTrue.Cost)
	fmt.Printf("robust plan: true cost %.4g (regret %.3f)\n", robustTrue.Cost, robustTrue.Cost/optTrue.Cost)

	// The guarantee robust mode actually makes: no plan — in particular
	// not the point plan — has a lower worst-case cost over the band.
	hi, err := mpq.InflateQuery(noisy, 1+eps)
	if err != nil {
		log.Fatal(err)
	}
	pointWC, err := mpq.ReannotatePlan(point.Best, hi, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworst case over the band: robust %.4g <= point %.4g\n",
		robust.Best.Buffer, pointWC.Cost)
}
