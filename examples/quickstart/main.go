// Quickstart: build a small star query by hand, optimize it with the
// serial baseline engine and with MPQ across goroutine workers through
// the unified Engine API, and confirm both agree.
//
// Run with: go run ./examples/quickstart
// Try:      go run ./examples/quickstart -engine sim
package main

import (
	"context"
	"fmt"
	"log"

	"mpq"
	"mpq/internal/cliutil"
)

func main() {
	// The -engine flag selects the execution substrate (local goroutine
	// workers by default); every engine returns the same plans.
	eng := cliutil.MustParseEngine("local")
	ctx := context.Background()

	// A data-warehouse style star join: a fact table and three
	// dimensions, equality predicates on the foreign keys.
	q := mpq.MustNewQuery([]mpq.QueryTable{
		{Name: "sales", Cardinality: 5e6},
		{Name: "stores", Cardinality: 1_000},
		{Name: "products", Cardinality: 50_000},
		{Name: "dates", Cardinality: 3_650},
	})
	q.MustAddPredicate(mpq.Predicate{Left: 0, Right: 1, Selectivity: 1.0 / 1_000})
	q.MustAddPredicate(mpq.Predicate{Left: 0, Right: 2, Selectivity: 1.0 / 50_000})
	q.MustAddPredicate(mpq.Predicate{Left: 0, Right: 3, Selectivity: 1.0 / 3_650})

	// The classical serial optimizer (Selinger DP, left-deep space).
	serial, err := mpq.NewSerialEngine().Optimize(ctx, q, mpq.JobSpec{Space: mpq.Linear, Workers: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("serial optimum:")
	fmt.Print(serial.Best.Format())

	// MPQ: the same plan space partitioned across 4 workers, each
	// exploring a quarter of the join orders. The master compares the
	// four partition-optimal plans.
	ans, err := eng.Optimize(ctx, q, mpq.JobSpec{Space: mpq.Linear, Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMPQ over 4 workers found %s with cost %.4g (serial cost %.4g)\n",
		ans.Best, ans.Best.Cost, serial.Best.Cost)
	for _, w := range ans.PerWorker {
		fmt.Printf("  worker %d: %d sets, %d splits, best-of-partition kept %d plan(s)\n",
			w.PartID, w.Stats.SetsProcessed, w.Stats.SplitsTried, w.Plans)
	}

	// Bushy plans can beat left-deep ones; try the larger space.
	bushy, err := eng.Optimize(ctx, q, mpq.JobSpec{Space: mpq.Bushy, Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbushy optimum: %s cost %.4g\n", bushy.Best, bushy.Best.Cost)
}
