// Cluster simulation: run MPQ on a simulated 100-node shared-nothing
// cluster and watch the paper's scaling behaviour — worker time and
// memory shrink as workers double, network traffic stays tiny because
// only (query, partition ID) and one plan per worker ever cross the
// network.
//
// Run with: go run ./examples/clustersim
package main

import (
	"fmt"
	"log"

	"mpq"
)

func main() {
	// A 16-table star query: 2^16 table sets — expensive enough that
	// parallelization pays (the paper's Figure 2 regime).
	_, q, err := mpq.GenerateWorkload(mpq.NewWorkloadParams(16, mpq.Star), 3)
	if err != nil {
		log.Fatal(err)
	}
	model := mpq.DefaultClusterModel()

	fmt.Println("MPQ on a simulated shared-nothing cluster (Linear-16, single objective)")
	fmt.Printf("%-8s %-12s %-12s %-12s %-16s %-10s\n",
		"workers", "time", "w-time", "net(bytes)", "memo(relations)", "speedup")
	var serial float64
	for m := 1; m <= mpq.MaxWorkers(mpq.Linear, q.N()) && m <= 128; m *= 2 {
		res, err := mpq.SimulateMPQ(model, q, mpq.JobSpec{Space: mpq.Linear, Workers: m})
		if err != nil {
			log.Fatal(err)
		}
		t := res.Metrics.VirtualTime
		if m == 1 {
			serial = float64(res.Metrics.MaxWorkerTime)
		}
		fmt.Printf("%-8d %-12v %-12v %-12d %-16d %-10.2f\n",
			m, t.Round(100_000), res.Metrics.MaxWorkerTime.Round(100_000),
			res.Metrics.Bytes, res.Metrics.MaxMemoEntries, serial/float64(t))
	}

	fmt.Println("\nEvery simulated run returns the exact same optimal plan:")
	res, err := mpq.SimulateMPQ(model, q, mpq.JobSpec{Space: mpq.Linear, Workers: 64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Best)
}
