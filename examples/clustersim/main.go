// Cluster simulation: run MPQ on a simulated 100-node shared-nothing
// cluster through the SimEngine and watch the paper's scaling
// behaviour — worker time and memory shrink as workers double, network
// traffic stays tiny because only (query, partition ID) and one plan
// per worker ever cross the network. Every answer carries the
// simulator's measurement record in Answer.Cluster.
//
// Run with: go run ./examples/clustersim
package main

import (
	"context"
	"fmt"
	"log"

	"mpq"
)

func main() {
	ctx := context.Background()
	// A 16-table star query: 2^16 table sets — expensive enough that
	// parallelization pays (the paper's Figure 2 regime).
	_, q, err := mpq.GenerateWorkload(mpq.NewWorkloadParams(16, mpq.Star), 3)
	if err != nil {
		log.Fatal(err)
	}
	eng := mpq.NewSimEngine(mpq.WithClusterModel(mpq.DefaultClusterModel()))

	fmt.Println("MPQ on a simulated shared-nothing cluster (Linear-16, single objective)")
	fmt.Printf("%-8s %-12s %-12s %-12s %-16s %-10s\n",
		"workers", "time", "w-time", "net(bytes)", "memo(relations)", "speedup")
	var serial float64
	for m := 1; m <= mpq.MaxWorkers(mpq.Linear, q.N()) && m <= 128; m *= 2 {
		ans, err := eng.Optimize(ctx, q, mpq.JobSpec{Space: mpq.Linear, Workers: m})
		if err != nil {
			log.Fatal(err)
		}
		met := ans.Cluster
		t := met.VirtualTime
		if m == 1 {
			serial = float64(met.MaxWorkerTime)
		}
		fmt.Printf("%-8d %-12v %-12v %-12d %-16d %-10.2f\n",
			m, t.Round(100_000), met.MaxWorkerTime.Round(100_000),
			met.Bytes, met.MaxMemoEntries, serial/float64(t))
	}

	fmt.Println("\nEvery simulated run returns the exact same optimal plan:")
	ans, err := eng.Optimize(ctx, q, mpq.JobSpec{Space: mpq.Linear, Workers: 64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ans.Best)
}
