// Distributed MPQ over real TCP: this example starts four worker
// servers on loopback sockets (in production they would be separate
// machines — see cmd/mpqnode), points a TCPEngine at them, and
// optimizes a query with one job frame per worker and one response
// frame back — the paper's one-round protocol on an actual network.
//
// It then demonstrates the two things the unified Engine API adds:
//
//   - OptimizeBatch pipelines several queries through one pool of
//     keep-alive connections (the master dials each worker once for
//     the whole batch — watch Answer.Net.Dials).
//   - A re-run while killing one worker mid-query: the fault-tolerant
//     master notices the dead node (per-job deadlines), moves its
//     partitions to the three survivors, and returns the identical
//     plan.
//
// Run with: go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"mpq"
)

func main() {
	ctx := context.Background()

	// Start four workers. Each is a stateless TCP server; the same
	// binary could run on four cluster nodes.
	var addrs []string
	var workers []*mpq.TCPWorker
	for i := 0; i < 4; i++ {
		w, err := mpq.ListenWorker("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
		workers = append(workers, w)
		addrs = append(addrs, w.Addr())
		fmt.Printf("worker %d listening on %s\n", i, w.Addr())
	}

	eng, err := mpq.NewTCPEngine(addrs,
		mpq.WithMasterOptions(mpq.MasterOptions{Timeout: 30 * time.Second}))
	if err != nil {
		log.Fatal(err)
	}

	// A 12-table chain query; 16 partitions over 4 workers means each
	// worker optimizes 4 partitions back to back.
	_, q, err := mpq.GenerateWorkload(mpq.NewWorkloadParams(12, mpq.Chain), 5)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	ans, err := eng.Optimize(ctx, q, mpq.JobSpec{Space: mpq.Linear, Workers: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimized 12-table query across %d TCP workers in %v\n",
		len(addrs), time.Since(start).Round(time.Millisecond))
	fmt.Printf("network: %d bytes sent, %d bytes received, %d messages over %d connections\n",
		ans.Net.BytesSent, ans.Net.BytesReceived, ans.Net.Messages, ans.Net.Dials)

	// The distributed answer matches the local engine bit for bit.
	local, err := mpq.NewInProcessEngine().Optimize(ctx, q, mpq.JobSpec{Space: mpq.Linear, Workers: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed plan: %s (cost %.4g)\n", ans.Best, ans.Best.Cost)
	fmt.Printf("local plan      : %s (cost %.4g)\n", local.Best, local.Best.Cost)

	// --- Batch walkthrough: three queries, one connection pool. ---
	var jobs []mpq.Job
	for seed := int64(6); seed <= 8; seed++ {
		_, bq, err := mpq.GenerateWorkload(mpq.NewWorkloadParams(10, mpq.Star), seed)
		if err != nil {
			log.Fatal(err)
		}
		jobs = append(jobs, mpq.Job{Query: bq, Spec: mpq.JobSpec{Space: mpq.Linear, Workers: 8}})
	}
	answers, err := eng.OptimizeBatch(ctx, jobs)
	if err != nil {
		log.Fatal(err)
	}
	dials := 0
	for i, a := range answers {
		fmt.Printf("batch query %d: %s (cost %.4g)\n", i, a.Best, a.Best.Cost)
		dials += a.Net.Dials
	}
	fmt.Printf("batch of %d queries used %d connection dials total (one per worker, reused across queries)\n",
		len(jobs), dials)

	// --- Failure walkthrough: kill a worker mid-query. ---
	//
	// A short per-job deadline makes detection fast; the retry budget and
	// worker-exclusion threshold are the defaults. Worker 0 is shot a few
	// milliseconds after the query starts, so some of its partitions die
	// with it and are re-dispatched to the survivors.
	fmt.Println("\nkilling worker 0 mid-query...")
	tolerant, err := mpq.NewTCPEngine(addrs,
		mpq.WithMasterOptions(mpq.MasterOptions{Timeout: 2 * time.Second}))
	if err != nil {
		log.Fatal(err)
	}
	timer := time.AfterFunc(2*time.Millisecond, func() { workers[0].Close() })
	defer timer.Stop()
	survived, err := tolerant.Optimize(ctx, q, mpq.JobSpec{Space: mpq.Linear, Workers: 16})
	if err != nil {
		log.Fatal(err)
	}
	if survived.Net.Redispatched == 0 {
		// The kill races the query on purpose; on a machine fast enough to
		// finish first there is simply nothing to recover from.
		fmt.Println("the query finished before the kill landed — nothing needed recovery")
	} else {
		fmt.Printf("survived: %d job(s) re-dispatched to the remaining %d workers\n",
			survived.Net.Redispatched, len(addrs)-1)
	}
	fmt.Printf("plan after failure: %s (cost %.4g)\n", survived.Best, survived.Best.Cost)
	if survived.Best.String() == ans.Best.String() {
		fmt.Println("identical to the failure-free plan — recovery changed nothing but the clock")
	}
}
