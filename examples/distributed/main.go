// Distributed MPQ over real TCP: this example starts four worker
// servers on loopback sockets (in production they would be separate
// machines — see cmd/mpqnode), points a master at them, and optimizes a
// query with one job frame per worker and one response frame back —
// the paper's one-round protocol on an actual network.
//
// Run with: go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"time"

	"mpq"
)

func main() {
	// Start four workers. Each is a stateless TCP server; the same
	// binary could run on four cluster nodes.
	var addrs []string
	for i := 0; i < 4; i++ {
		w, err := mpq.ListenWorker("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
		addrs = append(addrs, w.Addr())
		fmt.Printf("worker %d listening on %s\n", i, w.Addr())
	}

	master, err := mpq.NewMaster(addrs, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}

	// A 12-table chain query; 16 partitions over 4 workers means each
	// worker optimizes 4 partitions back to back.
	_, q, err := mpq.GenerateWorkload(mpq.NewWorkloadParams(12, mpq.Chain), 5)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	ans, err := master.Optimize(q, mpq.JobSpec{Space: mpq.Linear, Workers: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimized 12-table query across %d TCP workers in %v\n",
		len(addrs), time.Since(start).Round(time.Millisecond))
	fmt.Printf("network: %d bytes sent, %d bytes received, %d messages\n",
		ans.Net.BytesSent, ans.Net.BytesReceived, ans.Net.Messages)

	// The distributed answer matches the local engine bit for bit.
	local, err := mpq.Optimize(q, mpq.JobSpec{Space: mpq.Linear, Workers: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed plan: %s (cost %.4g)\n", ans.Best, ans.Best.Cost)
	fmt.Printf("local plan      : %s (cost %.4g)\n", local.Best, local.Best.Cost)
}
