// Multi-objective optimization: approximate the Pareto frontier over
// execution time and buffer space, and show how the approximation factor
// α trades frontier precision for optimization effort — the trade-off
// behind the paper's Table 1.
//
// Run with: go run ./examples/multiobjective
// Try:      go run ./examples/multiobjective -engine sim
package main

import (
	"context"
	"fmt"
	"log"

	"mpq"
	"mpq/internal/cliutil"
)

func main() {
	eng := cliutil.MustParseEngine("local")
	ctx := context.Background()

	// A random 10-table star query from the paper's workload generator.
	_, q, err := mpq.GenerateWorkload(mpq.NewWorkloadParams(10, mpq.Star), 42)
	if err != nil {
		log.Fatal(err)
	}

	// Exact Pareto frontier (α = 1) over 8 workers.
	exact, err := eng.Optimize(ctx, q, mpq.JobSpec{
		Space: mpq.Linear, Workers: 8,
		Objective: mpq.MultiObjective, Alpha: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact Pareto frontier: %d plans\n", len(exact.Frontier))
	for i, p := range exact.Frontier {
		fmt.Printf("  #%d time=%.4g buffer=%.4g  %s\n", i+1, p.Cost, p.Buffer, p)
	}

	// Sweep α: coarser frontiers shrink and the optimizer does less work.
	fmt.Println("\nα sweep (8 workers):")
	fmt.Printf("%-8s %-10s %-14s\n", "alpha", "frontier", "work units")
	for _, alpha := range []float64{1, 1.05, 1.25, 2, 5, 10} {
		ans, err := eng.Optimize(ctx, q, mpq.JobSpec{
			Space: mpq.Linear, Workers: 8,
			Objective: mpq.MultiObjective, Alpha: alpha,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8g %-10d %-14d\n", alpha, len(ans.Frontier), ans.Stats.WorkUnits())
	}

	// The frontier exposes real choices: the cheapest-time plan may hog
	// buffers; the thriftiest plan is slower.
	fastest := exact.Frontier[0]
	thrifty := exact.Frontier[len(exact.Frontier)-1]
	fmt.Printf("\nfastest plan : time %.4g, buffer %.4g\n", fastest.Cost, fastest.Buffer)
	fmt.Printf("thrifty plan : time %.4g, buffer %.4g\n", thrifty.Cost, thrifty.Buffer)
}
