// Execute: close the loop from optimization to execution. Generate a
// workload with its catalog, materialize synthetic data, optimize the
// query three different ways through the Engine API, run all three
// plans on the reference executor, and verify they produce the
// identical result multiset while costing very different amounts of
// work.
//
// Run with: go run ./examples/execute
// Try:      go run ./examples/execute -engine sim
package main

import (
	"context"
	"fmt"
	"log"

	"mpq"
	"mpq/internal/cliutil"
)

func main() {
	eng := cliutil.MustParseEngine("local")
	ctx := context.Background()

	// Small cardinalities so the materialized join is tractable.
	params := mpq.NewWorkloadParams(5, mpq.Chain)
	params.MinCard, params.MaxCard = 50, 400
	params.MinDomain, params.MaxDomain = 2, 30
	cat, q, err := mpq.GenerateWorkload(params, 21)
	if err != nil {
		log.Fatal(err)
	}
	db, err := mpq.GenerateData(cat, 99, mpq.ExecLimits{})
	if err != nil {
		log.Fatal(err)
	}

	// Three optimizers, three (possibly different) plans.
	serial := mpq.NewSerialEngine()
	linear, err := serial.Optimize(ctx, q, mpq.JobSpec{Space: mpq.Linear})
	if err != nil {
		log.Fatal(err)
	}
	bushy, err := eng.Optimize(ctx, q, mpq.JobSpec{Space: mpq.Bushy, Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	ordered, err := serial.Optimize(ctx, q, mpq.JobSpec{Space: mpq.Linear, InterestingOrders: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("plan                                   est.cost     rows  fingerprint")
	var firstFP string
	for _, entry := range []struct {
		name string
		p    *mpq.Plan
	}{
		{"linear DP", linear.Best},
		{"bushy MPQ (2 workers)", bushy.Best},
		{"linear DP + interesting orders", ordered.Best},
	} {
		res, err := mpq.ExecutePlan(entry.p, q, db, mpq.ExecLimits{})
		if err != nil {
			log.Fatal(err)
		}
		fp := res.Fingerprint()
		fmt.Printf("%-38s %-12.4g %-5d %s\n", entry.name, entry.p.Cost, len(res.Rows), fp)
		if firstFP == "" {
			firstFP = fp
		} else if fp != firstFP {
			log.Fatalf("plans disagree on the result!")
		}
	}
	fmt.Println("\nall plans computed the identical result multiset ✓")

	// How good was the cardinality estimate?
	res, err := mpq.ExecutePlan(linear.Best, q, db, mpq.ExecLimits{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated result cardinality %.4g, measured %d\n", linear.Best.Card, len(res.Rows))
}
