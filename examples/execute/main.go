// Execute: close the loop from optimization to execution. Generate a
// workload with its catalog, materialize synthetic data, optimize the
// query three different ways, run all three plans on the reference
// executor, and verify they produce the identical result multiset while
// costing very different amounts of work.
//
// Run with: go run ./examples/execute
package main

import (
	"fmt"
	"log"

	"mpq"
)

func main() {
	// Small cardinalities so the materialized join is tractable.
	params := mpq.NewWorkloadParams(5, mpq.Chain)
	params.MinCard, params.MaxCard = 50, 400
	params.MinDomain, params.MaxDomain = 2, 30
	cat, q, err := mpq.GenerateWorkload(params, 21)
	if err != nil {
		log.Fatal(err)
	}
	db, err := mpq.GenerateData(cat, 99, mpq.ExecLimits{})
	if err != nil {
		log.Fatal(err)
	}

	// Three optimizers, three (possibly different) plans.
	linear, err := mpq.OptimizeSerial(q, mpq.Linear, false)
	if err != nil {
		log.Fatal(err)
	}
	bushy, err := mpq.Optimize(q, mpq.JobSpec{Space: mpq.Bushy, Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	ordered, err := mpq.OptimizeSerial(q, mpq.Linear, true)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("plan                                   est.cost     rows  fingerprint")
	var firstFP string
	for _, entry := range []struct {
		name string
		p    *mpq.Plan
	}{
		{"linear DP", linear},
		{"bushy MPQ (2 workers)", bushy.Best},
		{"linear DP + interesting orders", ordered},
	} {
		res, err := mpq.ExecutePlan(entry.p, q, db, mpq.ExecLimits{})
		if err != nil {
			log.Fatal(err)
		}
		fp := res.Fingerprint()
		fmt.Printf("%-38s %-12.4g %-5d %s\n", entry.name, entry.p.Cost, len(res.Rows), fp)
		if firstFP == "" {
			firstFP = fp
		} else if fp != firstFP {
			log.Fatalf("plans disagree on the result!")
		}
	}
	fmt.Println("\nall plans computed the identical result multiset ✓")

	// How good was the cardinality estimate?
	res, err := mpq.ExecutePlan(linear, q, db, mpq.ExecLimits{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated result cardinality %.4g, measured %d\n", linear.Card, len(res.Rows))
}
