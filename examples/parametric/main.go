// Parametric query optimization: when plan cost depends on a run-time
// parameter (here memory pressure θ: hash joins spill and get more
// expensive as θ grows), the optimizer returns one plan per parameter
// region instead of a single plan. The paper's plan-space partitioning
// parallelizes this variant unchanged — only the pruning function
// differs (§2, §4).
//
// The example cross-checks the parametric frontier against the Engine
// API: an engine configured (via WithCostModel) with the scalar cost
// model specialized at a fixed θ must find a plan exactly as cheap as
// the frontier plan chosen for that θ.
//
// Run with: go run ./examples/parametric
// Try:      go run ./examples/parametric -engine serial
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"mpq"
	"mpq/internal/cliutil"
)

func main() {
	eng := cliutil.MustParseEngine("local")
	ctx := context.Background()

	_, q, err := mpq.GenerateWorkload(mpq.NewWorkloadParams(9, mpq.Star), 17)
	if err != nil {
		log.Fatal(err)
	}

	// Hash joins cost 25x more at full memory pressure (θ=1).
	const spill = 25.0
	frontier, err := mpq.OptimizeParametric(q, mpq.Linear, 4, spill)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parametric-optimal plan set: %d plans\n", len(frontier))
	for i, p := range frontier {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(frontier)-5)
			break
		}
		fmt.Printf("  #%d cost(θ=0)=%.4g cost(θ=1)=%.4g  %s\n", i+1, p.Cost, p.Buffer, p)
	}

	// The parameter space decomposes into regions with a constant
	// optimal plan — decide at run time with zero re-optimization.
	bps, err := mpq.ParametricBreakpoints(frontier)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noptimality regions:")
	for i := 0; i+1 < len(bps); i++ {
		mid := (bps[i] + bps[i+1]) / 2
		best, err := mpq.ParametricBest(frontier, mid)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  θ ∈ [%.3f, %.3f]: %s (cost at midpoint %.4g)\n",
			bps[i], bps[i+1], best, mpq.ParametricCostAt(best, mid))
	}

	// Cross-check against the unified Engine API: specialize the cost
	// model at θ = 0.5 and re-optimize from scratch. The scalar optimum
	// must cost exactly what the frontier's θ=0.5 plan costs.
	const theta = 0.5
	m := mpq.DefaultCostModel()
	m.HashFactor *= 1 + theta*(spill-1)
	specialized := mpq.NewInProcessEngine(mpq.WithCostModel(m))
	ans, err := specialized.Optimize(ctx, q, mpq.JobSpec{Space: mpq.Linear, Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	best, err := mpq.ParametricBest(frontier, theta)
	if err != nil {
		log.Fatal(err)
	}
	want := mpq.ParametricCostAt(best, theta)
	fmt.Printf("\nθ=%.1f scalar re-optimization: cost %.6g; parametric frontier plan: cost %.6g\n",
		theta, ans.Best.Cost, want)
	if math.Abs(ans.Best.Cost-want) > 1e-9*want {
		log.Fatal("frontier disagrees with the specialized scalar optimum")
	}
	fmt.Println("the frontier plan is exactly the scalar optimum at that θ ✓")

	// And θ=0 is the plain cost model — any engine finds it.
	plain, err := eng.Optimize(ctx, q, mpq.JobSpec{Space: mpq.Linear, Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	zero, err := mpq.ParametricBest(frontier, 0)
	if err != nil {
		log.Fatal(err)
	}
	if math.Abs(plain.Best.Cost-zero.Cost) > 1e-9*zero.Cost {
		log.Fatal("θ=0 frontier plan disagrees with the default-model optimum")
	}
	fmt.Println("θ=0 matches the default cost model's optimum on the flag-selected engine ✓")
}
