// Parametric query optimization: when plan cost depends on a run-time
// parameter (here memory pressure θ: hash joins spill and get more
// expensive as θ grows), the optimizer returns one plan per parameter
// region instead of a single plan. The paper's plan-space partitioning
// parallelizes this variant unchanged — only the pruning function
// differs (§2, §4).
//
// Run with: go run ./examples/parametric
package main

import (
	"fmt"
	"log"

	"mpq"
)

func main() {
	_, q, err := mpq.GenerateWorkload(mpq.NewWorkloadParams(9, mpq.Star), 17)
	if err != nil {
		log.Fatal(err)
	}

	// Hash joins cost 25x more at full memory pressure (θ=1).
	const spill = 25.0
	frontier, err := mpq.OptimizeParametric(q, mpq.Linear, 4, spill)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parametric-optimal plan set: %d plans\n", len(frontier))
	for i, p := range frontier {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(frontier)-5)
			break
		}
		fmt.Printf("  #%d cost(θ=0)=%.4g cost(θ=1)=%.4g  %s\n", i+1, p.Cost, p.Buffer, p)
	}

	// The parameter space decomposes into regions with a constant
	// optimal plan — decide at run time with zero re-optimization.
	bps, err := mpq.ParametricBreakpoints(frontier)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noptimality regions:")
	for i := 0; i+1 < len(bps); i++ {
		mid := (bps[i] + bps[i+1]) / 2
		best, err := mpq.ParametricBest(frontier, mid)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  θ ∈ [%.3f, %.3f]: %s (cost at midpoint %.4g)\n",
			bps[i], bps[i+1], best, mpq.ParametricCostAt(best, mid))
	}
}
