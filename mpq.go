// Package mpq is a massively-parallel query optimizer: a Go
// implementation of "Parallelizing Query Optimization on Shared-Nothing
// Architectures" (Trummer & Koch, VLDB 2016).
//
// MPQ divides the plan search space of a join query into equal-size
// partitions using join-order constraints, optimizes every partition
// independently with a Selinger-style dynamic program, and compares the
// partition-optimal plans to obtain the global optimum. One task per
// worker, one round of communication, no shared state — so it scales on
// clusters as well as on cores.
//
// # Quick start
//
//	q := mpq.MustNewQuery([]mpq.QueryTable{
//		{Name: "orders", Cardinality: 1e6},
//		{Name: "customers", Cardinality: 1e4},
//		{Name: "nations", Cardinality: 25},
//	})
//	q.MustAddPredicate(mpq.Predicate{Left: 0, Right: 1, Selectivity: 1e-4})
//	q.MustAddPredicate(mpq.Predicate{Left: 1, Right: 2, Selectivity: 0.04})
//
//	eng := mpq.NewInProcessEngine()
//	ans, err := eng.Optimize(context.Background(), q, mpq.JobSpec{Space: mpq.Linear, Workers: 2})
//	if err != nil { ... }
//	fmt.Println(ans.Best.Format())
//
// # Execution engines
//
// All four engines implement the Engine interface — context-aware
// Optimize plus batch-capable OptimizeBatch — run the same worker code
// on the same plan-space partitions, and return identical plans:
//
//   - NewSerialEngine — the classical single-node dynamic program (the
//     baseline every speedup is measured against).
//   - NewInProcessEngine — goroutine workers in this process
//     (WithParallelism caps concurrency).
//   - NewSimEngine — deterministic shared-nothing cluster simulation
//     with byte-exact network accounting (the engine behind the paper's
//     figures); answers carry ClusterMetrics in Answer.Cluster.
//   - NewTCPEngine — real TCP master/worker deployment (start workers
//     with ListenWorker); answers carry NetStats in Answer.Net.
//
// Constructors take functional options (WithParallelism,
// WithClusterModel, WithMasterOptions, WithCostModel, ...).
// Cancellation and per-job deadlines flow through context.Context; see
// docs/api.md for the full engine guide and the migration table from
// the deprecated free functions (Optimize, SimulateMPQ, NewMaster, ...).
//
// Any engine composes with WithCache, which serves repeated requests
// from a fingerprint-keyed plan cache (singleflight collapsing,
// cost-weighted LRU eviction) with answers bit-identical to the
// uncached engine's:
//
//	cached := mpq.WithCache(eng, mpq.CacheConfig{MaxBytes: 1 << 20})
//
// # Multi-objective optimization
//
// Set JobSpec.Objective to MultiObjective to approximate the Pareto
// frontier over (time, buffer space) with the α-approximate pruning of
// Trummer & Koch; Alpha = 1 yields the exact frontier.
//
// # Robust plans under estimation error
//
// Set JobSpec.Objective to RobustObjective to optimize against a
// selectivity uncertainty band instead of point estimates: every
// predicate selectivity s may really be anywhere in [s, min(1, s·B)]
// with B = JobSpec.RobustBand (default DefaultRobustBand). The engine
// tracks each candidate plan's nominal cost and its worst-case cost at
// the high endpoint of the band, keeps the Pareto frontier over the
// pair, and picks the plan minimizing the worst case as Answer.Best
// (the frontier is in Answer.Frontier; worst-case cost is the plan's
// Buffer annotation). PerturbQuery injects seeded q-error-style noise
// into selectivities for regret experiments; see docs/workloads.md.
package mpq

import (
	"time"

	"mpq/internal/catalog"
	"mpq/internal/cluster"
	"mpq/internal/core"
	"mpq/internal/cost"
	"mpq/internal/dp"
	"mpq/internal/estim"
	"mpq/internal/exec"
	"mpq/internal/mo"
	"mpq/internal/netrun"
	"mpq/internal/partition"
	"mpq/internal/plan"
	"mpq/internal/pqo"
	"mpq/internal/query"
	"mpq/internal/wire"
	"mpq/internal/workload"
)

// Core model types.
type (
	// Query is a join query: tables plus equality predicates.
	Query = query.Query
	// QueryTable is one base relation of a query.
	QueryTable = query.Table
	// Predicate is an equality join predicate with a selectivity.
	Predicate = query.Predicate
	// Plan is an operator-tree query plan with cost annotations.
	Plan = plan.Node
	// Stats counts optimizer work (sets, splits, plans, memo size).
	Stats = plan.Stats
	// CostModel parameterizes operator cost formulas.
	CostModel = cost.Model
	// Space selects the left-deep (Linear) or Bushy plan space.
	Space = partition.Space
	// Objective selects single- or multi-objective optimization.
	Objective = core.Objective
	// JobSpec describes one optimization job (space, workers, objective).
	JobSpec = core.JobSpec
	// Answer is the result of an optimization run.
	Answer = core.Answer
	// CacheStats records how a plan cache served an answer (Answer.Cache,
	// set by CachedEngine): hit/collapse flags plus cache-wide counters.
	CacheStats = core.CacheStats
	// CostVector is a plan's (time, buffer) cost in multi-objective mode.
	CostVector = mo.Vector
)

// Catalog types.
type (
	// Catalog stores table statistics (cardinalities, attribute domains).
	Catalog = catalog.Catalog
	// CatalogTable is one relation's statistics.
	CatalogTable = catalog.Table
	// Attribute is one column with its domain size.
	Attribute = catalog.Attribute
	// Schema is a TPC-style schema definition: tables and joins whose
	// statistics scale with a scale factor (see Schema.Build).
	Schema = catalog.Schema
)

// Cluster-simulation types.
type (
	// ClusterModel parameterizes the simulated shared-nothing cluster.
	ClusterModel = cluster.Model
	// ClusterResult is a simulated run's plans plus measured metrics.
	ClusterResult = cluster.Result
	// ClusterMetrics holds bytes, messages, virtual times and memory.
	ClusterMetrics = cluster.Metrics
	// NodeResources gives one simulated node's CPU/memory/network
	// capacities for the multi-resource cluster model
	// (ClusterModel.Resources).
	NodeResources = cluster.NodeResources
)

// Workload-generation types.
type (
	// WorkloadParams configures random query generation (Steinbrunn).
	WorkloadParams = workload.Params
	// Shape is a join-graph structure (Star, Chain, Cycle, Clique,
	// Snowflake).
	Shape = workload.Shape
	// StreamParams configures a Zipf-popularity repeat stream of queries
	// (the workload a plan cache is measured against).
	StreamParams = workload.StreamParams
	// Stream is a generated repeat stream: distinct queries plus arrival
	// order.
	Stream = workload.Stream
)

// Distributed-runtime types.
type (
	// TCPWorker serves optimization jobs over TCP.
	TCPWorker = netrun.Worker
	// TCPMaster coordinates remote TCP workers.
	TCPMaster = netrun.Master
	// TCPAnswer is a distributed answer with measured network stats.
	TCPAnswer = netrun.Answer
	// MasterOptions configures the fault-tolerant TCP master: per-job
	// deadline, per-partition retry budget, worker-exclusion threshold,
	// and per-worker weights.
	MasterOptions = netrun.Options
	// ClusterFaults scripts worker deaths, stalls and speculative
	// re-dispatch for the cluster simulator.
	ClusterFaults = cluster.Faults
)

// Plan spaces.
const (
	Linear = partition.Linear
	Bushy  = partition.Bushy
)

// Objectives.
const (
	SingleObjective = core.SingleObjective
	MultiObjective  = core.MultiObjective
	RobustObjective = core.RobustObjective
)

// DefaultRobustBand is the selectivity uncertainty band a robust job
// uses when JobSpec.RobustBand is zero: each predicate selectivity s is
// assumed to really lie in [s, min(1, 2s)].
const DefaultRobustBand = core.DefaultRobustBand

// Join-graph shapes.
const (
	Star      = workload.Star
	Chain     = workload.Chain
	Cycle     = workload.Cycle
	Clique    = workload.Clique
	Snowflake = workload.Snowflake
)

// NoOrder marks a plan output without a useful sort order.
const NoOrder = query.NoOrder

// NewQuery creates a query over the given tables.
func NewQuery(tables []QueryTable) (*Query, error) { return query.New(tables) }

// MustNewQuery is NewQuery for known-valid input; panics on error.
func MustNewQuery(tables []QueryTable) *Query { return query.MustNew(tables) }

// DefaultCostModel returns the cost model used throughout the paper
// reproduction (Steinbrunn-style operator formulas).
func DefaultCostModel() CostModel { return cost.Default() }

// MaxWorkers returns the largest worker count the partitioning scheme
// supports for a query of n tables: 2^⌊n/2⌋ (Linear) or 2^⌊n/3⌋ (Bushy).
func MaxWorkers(space Space, n int) int { return partition.MaxWorkers(space, n) }

// Optimize runs MPQ with one goroutine per plan-space partition and
// returns the globally optimal plan (and, for multi-objective jobs, the
// merged Pareto frontier).
//
// Deprecated: use NewInProcessEngine().Optimize, which accepts a
// context for cancellation and deadlines.
func Optimize(q *Query, spec JobSpec) (*Answer, error) { return core.Optimize(q, spec) }

// OptimizeParallelism is Optimize with a cap on concurrently running
// worker goroutines.
//
// Deprecated: use NewInProcessEngine(WithParallelism(maxParallel)).
func OptimizeParallelism(q *Query, spec JobSpec, maxParallel int) (*Answer, error) {
	return core.OptimizeParallelism(q, spec, maxParallel)
}

// OptimizeSerial runs the classical single-node dynamic program — the
// baseline every speedup is measured against. With interestingOrders the
// pruning retains the best plan per sort order.
//
// Deprecated: use NewSerialEngine().Optimize (set
// JobSpec.InterestingOrders for order-aware pruning; the best plan is
// Answer.Best).
func OptimizeSerial(q *Query, space Space, interestingOrders bool) (*Plan, error) {
	opts := dp.Options{InterestingOrders: interestingOrders}
	if interestingOrders {
		opts.Pruner = dp.OrderAware{}
	}
	res, err := dp.Serial(q, space, opts)
	if err != nil {
		return nil, err
	}
	return res.Best(), nil
}

// DefaultClusterModel returns the calibrated simulated-cluster
// parameters used by the experiment harness.
func DefaultClusterModel() ClusterModel { return cluster.Default() }

// SimulateMPQ runs MPQ on a simulated shared-nothing cluster, returning
// the plans plus byte-exact network and virtual-time metrics.
//
// Deprecated: use NewSimEngine(WithClusterModel(model)).Optimize; the
// metrics are in Answer.Cluster.
func SimulateMPQ(model ClusterModel, q *Query, spec JobSpec) (*ClusterResult, error) {
	return cluster.RunMPQ(model, q, spec)
}

// GenerateWorkload builds a random catalog and query by the Steinbrunn
// et al. method the paper benchmarks with. Same (params, seed) — same
// query.
func GenerateWorkload(p WorkloadParams, seed int64) (*Catalog, *Query, error) {
	return workload.Generate(p, seed)
}

// NewWorkloadParams returns the default generation parameters for an
// n-table query with the given join-graph shape.
func NewWorkloadParams(n int, shape Shape) WorkloadParams { return workload.NewParams(n, shape) }

// TPCHSchema returns the built-in TPC-H-style schema (eight relations
// with the spec's scale-factor-1 statistics and foreign-key joins).
func TPCHSchema() *Schema { return catalog.TPCH() }

// TPCDSSchema returns the built-in TPC-DS-style snowflake schema
// (store_sales fact, dimensions and sub-dimensions).
func TPCDSSchema() *Schema { return catalog.TPCDS() }

// SchemaWorkload builds the catalog and the canonical foreign-key join
// query of a TPC-style schema at the given scale factor. Deterministic:
// no random draws are taken.
func SchemaWorkload(s *Schema, sf float64) (*Catalog, *Query, error) {
	return workload.FromSchema(s, sf)
}

// SubgraphWorkload builds the catalog and join query of a random
// connected sub-graph of a TPC-style schema's foreign-key join graph:
// tables relations chosen by seeded random connected growth, joined by
// every schema join between chosen relations. Same (schema, sf, tables,
// seed) — same query.
func SubgraphWorkload(s *Schema, sf float64, tables int, seed int64) (*Catalog, *Query, error) {
	return workload.SubgraphFromSchema(s, sf, tables, seed)
}

// ListenWorker starts a TCP optimization worker on addr (host:port;
// use ":0" for an ephemeral port).
func ListenWorker(addr string) (*TCPWorker, error) { return netrun.ListenWorker(addr) }

// NewMaster returns a TCP master that distributes partitions over the
// given worker addresses. timeout bounds each job attempt end-to-end —
// it covers dialing the worker as well as the send, the worker's
// compute, and the receive, so it is also the dial timeout. It is
// exactly NewMasterWithOptions(addrs, MasterOptions{Timeout: timeout}).
//
// Deprecated: use NewTCPEngine(addrs,
// WithMasterOptions(MasterOptions{Timeout: timeout})).
func NewMaster(addrs []string, timeout time.Duration) (*TCPMaster, error) {
	return netrun.NewMasterWithOptions(addrs, MasterOptions{Timeout: timeout})
}

// NewMasterWithOptions returns a TCP master with full fault-tolerance
// configuration: per-job deadlines, partition re-dispatch with a retry
// budget, and exclusion of repeatedly failing workers. See the
// internal/netrun package documentation for the failure model.
//
// Deprecated: use NewTCPEngine(addrs, WithMasterOptions(opts)), whose
// answers also carry the network accounting in Answer.Net.
func NewMasterWithOptions(addrs []string, opts MasterOptions) (*TCPMaster, error) {
	return netrun.NewMasterWithOptions(addrs, opts)
}

// SimulateMPQWithFaults runs MPQ on the simulated cluster while the
// scripted workers die mid-query: the master detects each death after
// faults.DetectTimeout of virtual time and re-dispatches the partition
// to a survivor. Plans are bit-identical to the failure-free run; the
// metrics expose the recovery overhead.
//
// Deprecated: use NewSimEngine(WithClusterModel(model),
// WithClusterFaults(faults)).Optimize; the metrics are in
// Answer.Cluster.
func SimulateMPQWithFaults(model ClusterModel, q *Query, spec JobSpec, faults ClusterFaults) (*ClusterResult, error) {
	return cluster.RunMPQWithFaults(model, q, spec, faults)
}

// EncodeQuery serializes a query into the wire format used between
// master and workers.
func EncodeQuery(q *Query) []byte { return wire.EncodeQuery(q) }

// DecodeQuery parses a serialized query.
func DecodeQuery(b []byte) (*Query, error) { return wire.DecodeQuery(b) }

// EncodePlan serializes a plan with its cost annotations.
func EncodePlan(p *Plan) []byte { return wire.EncodePlan(p) }

// DecodePlan parses a serialized plan.
func DecodePlan(b []byte) (*Plan, error) { return wire.DecodePlan(b) }

// PlanFingerprint returns a comparable, printable fingerprint of a
// plan: the hex SHA-256 of its wire encoding. Equal fingerprints mean
// bit-identical plans — same structure, algorithms and cost
// annotations. This is the equivalence the engines guarantee across
// substrates and the plan cache guarantees across hits.
func PlanFingerprint(p *Plan) string { return wire.PlanFingerprint(p) }

// ExactFrontier filters plans down to their exact Pareto frontier over
// (time, buffer).
func ExactFrontier(plans []*Plan) []*Plan { return mo.ExactFrontier(plans) }

// ValidatePlan recomputes a plan's annotations against the query and
// cost model and reports the first inconsistency.
func ValidatePlan(p *Plan, q *Query, m CostModel) error { return p.Validate(q, m) }

// --- Estimation error and robustness (see internal/estim) ---

// PerturbQuery returns a copy of q whose predicate selectivities carry
// seeded multiplicative q-error-style noise: each selectivity is
// multiplied by (1+magnitude)^u with u uniform on [-1, 1], clamped to
// (0, 1]. magnitude 0 returns q itself — bit-identical plans, no random
// draws. Same (query, magnitude, seed) — same perturbed query.
func PerturbQuery(q *Query, magnitude float64, seed int64) (*Query, error) {
	return estim.Perturb(q, estim.Noise{Magnitude: magnitude, Seed: seed})
}

// InflateQuery returns a copy of q with every predicate selectivity s
// replaced by min(1, s·band) — the high endpoint of the uncertainty
// band a robust job plans against. band 1 returns q itself.
func InflateQuery(q *Query, band float64) (*Query, error) {
	return estim.Inflate(q, band)
}

// QError returns the q-error between an estimated and a true value:
// max(est/truth, truth/est), the standard multiplicative estimation-
// error metric (Moerkotte et al., VLDB 2009). +Inf if either is
// nonpositive.
func QError(est, truth float64) float64 { return estim.QError(est, truth) }

// ReannotatePlan recomputes a plan's cardinality and cost annotations
// bottom-up under a (possibly different) query's selectivities, keeping
// the join order and algorithms fixed — the "what does this plan really
// cost" primitive of the regret experiment. The input plan is not
// modified.
func ReannotatePlan(p *Plan, q *Query, m CostModel) (*Plan, error) {
	return p.Reannotate(q, m)
}

// --- Parametric query optimization (see internal/pqo) ---

// OptimizeParametric runs parametric MPQ: plan costs are linear in a
// run-time parameter θ ∈ [0,1] (memory pressure; hash joins cost spill
// times more at θ=1) and the returned frontier contains an optimal plan
// for every θ. The paper's partitioning covers this variant unchanged
// (§2, §4).
func OptimizeParametric(q *Query, space Space, workers int, spill float64) ([]*Plan, error) {
	return pqo.Optimize(q, space, workers, spill)
}

// ParametricCostAt evaluates a parametric plan's cost at θ.
func ParametricCostAt(p *Plan, theta float64) float64 { return pqo.CostAt(p, theta) }

// ParametricBest picks the frontier plan that is optimal at θ.
func ParametricBest(frontier []*Plan, theta float64) (*Plan, error) {
	return pqo.Best(frontier, theta)
}

// ParametricBreakpoints returns the θ values (including 0 and 1) that
// delimit the parameter regions with a constant optimal plan.
func ParametricBreakpoints(frontier []*Plan) ([]float64, error) {
	return pqo.Breakpoints(frontier)
}

// ParametricCellCache caches parametric optimizations per parameter-
// space cell: one parametric MPQ run per (query, space, workers, spill)
// serves every point query θ ∈ [0,1] from the covering cell. Point
// answers are bit-identical to ParametricBest over a fresh
// OptimizeParametric run.
type ParametricCellCache = pqo.CellCache

// ParametricCellCacheStats is a snapshot of a ParametricCellCache's
// counters.
type ParametricCellCacheStats = pqo.CellCacheStats

// NewParametricCellCache returns an empty parametric plan cache.
func NewParametricCellCache() *ParametricCellCache { return pqo.NewCellCache() }

// GenerateWorkloadStream builds a Zipf-popularity repeat stream of
// queries: p.Distinct distinct queries arriving p.Length times with
// skew-s popularity. Deterministic per (params, seed); the distinct
// queries equal GenerateWorkload(p.Query, seed+rank).
func GenerateWorkloadStream(p StreamParams, seed int64) (*Stream, error) {
	return workload.GenerateStream(p, seed)
}

// --- Reference executor (see internal/exec) ---

// Database is a set of materialized synthetic base tables.
type Database = exec.DB

// ExecLimits bounds executor result sizes.
type ExecLimits = exec.Limits

// Relation is an executed (intermediate) result.
type Relation = exec.Relation

// GenerateData materializes synthetic rows for every catalog table
// (uniform attribute values over their domains; deterministic per seed).
func GenerateData(cat *Catalog, seed int64, lim ExecLimits) (*Database, error) {
	return exec.Generate(cat, seed, lim)
}

// GenerateDataZipf is GenerateData with Zipf-skewed attribute values:
// value v of a domain of size d is drawn with probability proportional
// to 1/(v+1)^s. Skew 0 is exactly GenerateData (uniform, identical draw
// sequence); larger s concentrates rows on few values, making true join
// selectivities diverge from the catalog's uniformity assumption.
func GenerateDataZipf(cat *Catalog, seed int64, lim ExecLimits, skew float64) (*Database, error) {
	return exec.GenerateZipf(cat, seed, lim, skew)
}

// ExecutePlan runs a plan over a database with real join operators and
// returns the result relation. Equivalent plans produce identical
// result multisets (Relation.Fingerprint).
func ExecutePlan(p *Plan, q *Query, db *Database, lim ExecLimits) (*Relation, error) {
	return exec.Execute(p, q, db, lim)
}
